package runner

import (
	"errors"
	"fmt"
)

// Sample is one metrics observation of a run, with every field numeric so
// summaries average cleanly (the simulator's integer Delivered becomes
// fractional under averaging anyway).
type Sample struct {
	Time      float64 `json:"t"`
	PointFrac float64 `json:"pt"`
	AspectRad float64 `json:"as"`
	Delivered float64 `json:"del"`
}

// Summary is the numeric projection of one run the orchestrator aggregates
// and checkpoints: everything an average needs, nothing more (in particular
// no photo collections), so a 50×N-point sweep retains O(workers) summaries
// instead of every run's full result.
type Summary struct {
	// Scheme labels the run; every run of a job must agree on it.
	Scheme string `json:"scheme,omitempty"`
	// Samples is the periodic metrics series; all runs of a job must share
	// one sample layout.
	Samples []Sample `json:"samples,omitempty"`
	// Final is the end-of-run observation.
	Final Sample `json:"final"`

	TransferredPhotos float64 `json:"xfer_photos"`
	TransferredBytes  float64 `json:"xfer_bytes"`
	NodeCrashes       float64 `json:"crashes,omitempty"`
	PhotosLostToCrash float64 `json:"photos_lost,omitempty"`
	AbortedTransfers  float64 `json:"aborts,omitempty"`
	MeanRecoverySec   float64 `json:"recovery_sec,omitempty"`
}

// scalarCount is the number of per-run scalar metrics outside the sample
// series (Final counts as one sample).
const scalarCount = 6

// flatten lays a summary out as one vector for the Welford accumulators:
// per-sample quadruples (Final last), then the scalars.
func flatten(s *Summary) []float64 {
	vec := make([]float64, 0, (len(s.Samples)+1)*4+scalarCount)
	for _, sm := range s.Samples {
		vec = append(vec, sm.Time, sm.PointFrac, sm.AspectRad, sm.Delivered)
	}
	vec = append(vec, s.Final.Time, s.Final.PointFrac, s.Final.AspectRad, s.Final.Delivered)
	vec = append(vec, s.TransferredPhotos, s.TransferredBytes,
		s.NodeCrashes, s.PhotosLostToCrash, s.AbortedTransfers, s.MeanRecoverySec)
	return vec
}

// unflatten rebuilds a summary from a vector produced by flatten.
func unflatten(scheme string, vec []float64, samples int) Summary {
	s := Summary{Scheme: scheme}
	if samples > 0 {
		s.Samples = make([]Sample, samples)
	}
	for i := 0; i < samples; i++ {
		s.Samples[i] = Sample{Time: vec[4*i], PointFrac: vec[4*i+1], AspectRad: vec[4*i+2], Delivered: vec[4*i+3]}
	}
	f := 4 * samples
	s.Final = Sample{Time: vec[f], PointFrac: vec[f+1], AspectRad: vec[f+2], Delivered: vec[f+3]}
	sc := vec[f+4:]
	s.TransferredPhotos, s.TransferredBytes = sc[0], sc[1]
	s.NodeCrashes, s.PhotosLostToCrash = sc[2], sc[3]
	s.AbortedTransfers, s.MeanRecoverySec = sc[4], sc[5]
	return s
}

// Aggregate is the streaming-aggregated outcome of one job.
type Aggregate struct {
	// Key is the job's identity.
	Key string
	// Runs is the number of aggregated runs.
	Runs int
	// Mean holds the per-field mean across runs.
	Mean Summary
	// Var holds the per-field sample variance (n−1 denominator; all zero
	// for a single run). Time fields have zero variance by construction —
	// every run shares the sampling clock.
	Var Summary
}

// Aggregation errors.
var (
	// ErrLayout reports runs whose sample layouts or scheme names differ
	// within one job.
	ErrLayout = errors.New("runner: runs disagree on sample layout or scheme")
	// ErrIncomplete reports an aggregate finalised with missing runs.
	ErrIncomplete = errors.New("runner: aggregate is missing runs")
)

// Agg accumulates run summaries into streaming Welford mean/variance
// estimates. Summaries may arrive in any order (parallel workers finish
// out of order); Agg buffers out-of-order arrivals and applies them in run
// order, so the aggregate is bit-identical regardless of completion order —
// the property that makes parallel sweeps reproduce serial ones exactly.
// Memory is O(vector × out-of-order window), not O(runs).
//
// Agg is not safe for concurrent use; the orchestrator serialises Add calls.
type Agg struct {
	scheme  string
	samples int
	n       int
	mean    []float64
	m2      []float64
	next    int
	pending map[int][]float64
}

// NewAgg returns an empty aggregator; the first summary fixes the layout.
func NewAgg() *Agg {
	return &Agg{samples: -1, pending: make(map[int][]float64)}
}

// Add feeds the summary of run runIdx (0-based). Runs may arrive in any
// order but each index exactly once.
func (a *Agg) Add(runIdx int, s *Summary) error {
	if s == nil {
		return fmt.Errorf("runner: nil summary for run %d", runIdx)
	}
	if runIdx < a.next {
		return fmt.Errorf("runner: duplicate run %d", runIdx)
	}
	if _, dup := a.pending[runIdx]; dup {
		return fmt.Errorf("runner: duplicate run %d", runIdx)
	}
	if a.samples < 0 {
		a.samples = len(s.Samples)
		a.scheme = s.Scheme
	}
	if len(s.Samples) != a.samples || s.Scheme != a.scheme {
		return fmt.Errorf("%w: run %d has %d samples of %q, want %d of %q",
			ErrLayout, runIdx, len(s.Samples), s.Scheme, a.samples, a.scheme)
	}
	a.pending[runIdx] = flatten(s)
	for {
		vec, ok := a.pending[a.next]
		if !ok {
			return nil
		}
		delete(a.pending, a.next)
		a.next++
		a.apply(vec)
	}
}

// apply folds one vector into the Welford state.
func (a *Agg) apply(vec []float64) {
	if a.mean == nil {
		a.mean = make([]float64, len(vec))
		a.m2 = make([]float64, len(vec))
	}
	a.n++
	n := float64(a.n)
	for i, x := range vec {
		delta := x - a.mean[i]
		a.mean[i] += delta / n
		a.m2[i] += delta * (x - a.mean[i])
	}
}

// Count returns the number of summaries applied so far (contiguous from
// run 0; buffered out-of-order arrivals do not count yet).
func (a *Agg) Count() int { return a.n }

// Result finalises the aggregate for a job with the given key and expected
// run count.
func (a *Agg) Result(key string, runs int) (*Aggregate, error) {
	if a.n != runs || len(a.pending) != 0 {
		return nil, fmt.Errorf("%w: %s has %d of %d runs (%d buffered)",
			ErrIncomplete, key, a.n, runs, len(a.pending))
	}
	agg := &Aggregate{Key: key, Runs: runs, Mean: unflatten(a.scheme, a.mean, a.samples)}
	varVec := make([]float64, len(a.m2))
	if runs > 1 {
		inv := 1 / float64(runs-1)
		for i, m2 := range a.m2 {
			varVec[i] = m2 * inv
		}
	}
	agg.Var = unflatten(a.scheme, varVec, a.samples)
	return agg, nil
}
