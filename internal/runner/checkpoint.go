package runner

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// cellRecord is one completed cell as persisted in the checkpoint file:
// which job, which run, under what seed, and the run's summary. One JSON
// object per line (JSONL), append-only.
type cellRecord struct {
	Job     string   `json:"job"`
	Run     int      `json:"run"`
	Seed    int64    `json:"seed"`
	Summary *Summary `json:"summary"`
}

// Checkpoint records completed cells as JSONL so an interrupted sweep
// resumes from where it stopped instead of recomputing finished work. A
// record is matched on (job key, run index, seed): a checkpoint written
// under a different base seed or seed derivation simply misses and the cell
// reruns — stale files degrade to extra work, never to wrong results.
//
// Loading tolerates a truncated final line (the signature of a kill mid
// write); any unparsable line is skipped. A nil *Checkpoint is the disabled
// state: lookups miss and records are dropped.
type Checkpoint struct {
	mu   sync.Mutex
	w    io.Writer
	c    io.Closer
	done map[string]map[int]cellRecord
}

// OpenCheckpoint loads the checkpoint at path (creating it when absent) and
// opens it for appending. Close it when the sweep is done.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	cp := &Checkpoint{done: make(map[string]map[int]cellRecord)}
	if f, err := os.Open(path); err == nil {
		cp.load(f)
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("runner: checkpoint %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("runner: checkpoint %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: checkpoint %s: %w", path, err)
	}
	cp.w, cp.c = f, f
	return cp, nil
}

// load parses existing records, skipping unparsable lines.
func (cp *Checkpoint) load(r io.Reader) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		var rec cellRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil || rec.Summary == nil {
			continue
		}
		cp.put(rec)
	}
}

func (cp *Checkpoint) put(rec cellRecord) {
	runs := cp.done[rec.Job]
	if runs == nil {
		runs = make(map[int]cellRecord)
		cp.done[rec.Job] = runs
	}
	runs[rec.Run] = rec
}

// Lookup returns the recorded summary of a cell, if its seed matches.
func (cp *Checkpoint) Lookup(job string, run int, seed int64) (*Summary, bool) {
	if cp == nil {
		return nil, false
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	rec, ok := cp.done[job][run]
	if !ok || rec.Seed != seed {
		return nil, false
	}
	return rec.Summary, true
}

// Record persists one completed cell (one fsync-free JSONL append; the
// tolerant loader absorbs a torn final line on crash).
func (cp *Checkpoint) Record(job string, run int, seed int64, s *Summary) error {
	if cp == nil {
		return nil
	}
	rec := cellRecord{Job: job, Run: run, Seed: seed, Summary: s}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("runner: checkpoint: %w", err)
	}
	line = append(line, '\n')
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.w != nil {
		if _, err := cp.w.Write(line); err != nil {
			return fmt.Errorf("runner: checkpoint: %w", err)
		}
	}
	cp.put(rec)
	return nil
}

// Len returns the number of recorded cells.
func (cp *Checkpoint) Len() int {
	if cp == nil {
		return 0
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	n := 0
	for _, runs := range cp.done {
		n += len(runs)
	}
	return n
}

// Close closes the underlying file. Nil-safe.
func (cp *Checkpoint) Close() error {
	if cp == nil {
		return nil
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.c == nil {
		return nil
	}
	err := cp.c.Close()
	cp.c, cp.w = nil, nil
	if err != nil {
		return fmt.Errorf("runner: checkpoint: %w", err)
	}
	return nil
}
