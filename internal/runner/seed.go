package runner

// golden is the SplitMix64 stream increment (the 64-bit golden ratio).
const golden = 0x9E3779B97F4A7C15

// SplitMix64 is the SplitMix64 output function: a full-avalanche 64-bit
// mixer (Steele, Lea & Flood, OOPSLA 2014). It is the repository's standard
// seed-derivation primitive: cheap, stateless, and statistically independent
// outputs for sequential inputs.
func SplitMix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D49BB133111EB
	x ^= x >> 31
	return x
}

// CellSeed derives the seed of cell idx from a base seed: the idx-th output
// of the SplitMix64 stream seeded with base. The derivation is a pure
// function of (base, idx) — it does not depend on how many cells exist, in
// what order they execute, or where the cell's job sits in the matrix — so
// parallel schedules, reordered sweeps, and checkpoint resumes all see the
// same seed for the same cell.
func CellSeed(base int64, idx int) int64 {
	return int64(SplitMix64(uint64(base) + (uint64(idx)+1)*golden))
}
