package faults

import (
	"errors"
	"io"
	"testing"
)

// closableBuf records whether the remote-facing Close fired.
type closableBuf struct {
	data   []byte
	closed bool
}

func (b *closableBuf) Read(p []byte) (int, error) {
	if len(b.data) == 0 {
		return 0, io.EOF
	}
	n := copy(p, b.data)
	b.data = b.data[n:]
	return n, nil
}

func (b *closableBuf) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func (b *closableBuf) Close() error {
	b.closed = true
	return nil
}

func TestKillTransportSchedule(t *testing.T) {
	buf := &closableBuf{}
	kt := NewKillTransport(buf, 3)

	for i := 0; i < 2; i++ {
		if _, err := kt.Write([]byte{byte(i)}); err != nil {
			t.Fatalf("write %d before the schedule: %v", i+1, err)
		}
	}
	if kt.Killed() {
		t.Fatal("killed before the scheduled write")
	}
	if _, err := kt.Write([]byte{9}); !errors.Is(err, ErrKilled) {
		t.Fatalf("scheduled write: %v, want ErrKilled", err)
	}
	if !kt.Killed() {
		t.Fatal("Killed() false after the schedule fired")
	}
	if !buf.closed {
		t.Fatal("underlying closer not closed on kill")
	}
	if len(buf.data) != 2 {
		t.Fatalf("killed write reached the transport: %d bytes", len(buf.data))
	}
	if _, err := kt.Read(make([]byte, 1)); !errors.Is(err, ErrKilled) {
		t.Fatalf("read after kill: %v, want ErrKilled", err)
	}
	if _, err := kt.Write([]byte{9}); !errors.Is(err, ErrKilled) {
		t.Fatalf("write after kill: %v, want ErrKilled", err)
	}
}

func TestKillTransportFloorsSchedule(t *testing.T) {
	kt := NewKillTransport(&closableBuf{}, 0)
	if _, err := kt.Write([]byte{1}); !errors.Is(err, ErrKilled) {
		t.Fatalf("first write with schedule 0: %v, want ErrKilled", err)
	}
}

func TestByteKillTransportTearsMidWrite(t *testing.T) {
	buf := &closableBuf{}
	kt := NewByteKillTransport(buf, 10)

	if n, err := kt.Write(make([]byte, 6)); n != 6 || err != nil {
		t.Fatalf("write before the threshold: n=%d err=%v", n, err)
	}
	if kt.Killed() {
		t.Fatal("killed before the byte threshold")
	}
	// The crossing write sends only its 4 allowed bytes — a torn frame.
	if n, err := kt.Write(make([]byte, 6)); n != 4 || !errors.Is(err, ErrKilled) {
		t.Fatalf("crossing write: n=%d err=%v, want n=4 ErrKilled", n, err)
	}
	if !kt.Killed() {
		t.Fatal("Killed() false after the threshold")
	}
	if !buf.closed {
		t.Fatal("underlying closer not closed on kill")
	}
	if len(buf.data) != 10 {
		t.Fatalf("transport saw %d bytes, want exactly 10", len(buf.data))
	}
	// Reads pass through — the remote's view of the death is the underlying
	// Close, so in-flight bytes stay drainable.
	if n, err := kt.Read(make([]byte, 16)); n != 10 || err != nil {
		t.Fatalf("read after kill: n=%d err=%v, want the 10 drained bytes", n, err)
	}
	if _, err := kt.Write([]byte{9}); !errors.Is(err, ErrKilled) {
		t.Fatalf("write after kill: %v, want ErrKilled", err)
	}
}

func TestByteKillTransportFloorsSchedule(t *testing.T) {
	kt := NewByteKillTransport(&closableBuf{}, 0)
	if n, err := kt.Write([]byte{1, 2}); n != 0 || !errors.Is(err, ErrKilled) {
		t.Fatalf("first write with schedule 0: n=%d err=%v, want 0, ErrKilled", n, err)
	}
}
