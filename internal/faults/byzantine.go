// Byzantine adversary driver: a fake peer that speaks just enough of the
// wire protocol to reach its attack point, then misbehaves in one of a
// fixed set of seeded, reproducible ways. The honest node under test runs
// its real contact path against the adversary's connection; the property
// harness asserts that no strategy perturbs the honest node's durable
// state — every attack ends in a clean §III-D abort (or a shed contact)
// with nothing journaled and nothing applied.
package faults

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"photodtn/internal/geo"
	"photodtn/internal/model"
	"photodtn/internal/wire"
)

// ByzStrategy selects one adversarial behaviour.
type ByzStrategy int

const (
	// ByzAbsurdClaim advertises impossible PROPHET values in the hello:
	// a delivery predictability far above 1 and a negative contact rate.
	ByzAbsurdClaim ByzStrategy = iota
	// ByzPoisonedMetadata sends a metadata snapshot stamped far in the
	// future and carrying non-finite photo coordinates.
	ByzPoisonedMetadata
	// ByzReplay lists the same origin twice in one metadata message — a
	// replayed snapshot smuggled alongside the live one.
	ByzReplay
	// ByzOversizedClaim declares a photo of 2^60 bytes, baiting the
	// receiver into planning storage it could never hold.
	ByzOversizedClaim
	// ByzPhaseDesync skips the metadata round entirely and opens with a
	// plan-phase message, violating the protocol's round order.
	ByzPhaseDesync
	// ByzFlood speaks a well-formed handshake and metadata round, then
	// abandons the contact; the harness dials it in rapid succession so
	// the per-peer contact bucket runs dry.
	ByzFlood

	numByzStrategies
)

// ByzStrategies returns every strategy, for sweep-style tests.
func ByzStrategies() []ByzStrategy {
	out := make([]ByzStrategy, 0, numByzStrategies)
	for s := ByzStrategy(0); s < numByzStrategies; s++ {
		out = append(out, s)
	}
	return out
}

// String implements fmt.Stringer.
func (s ByzStrategy) String() string {
	switch s {
	case ByzAbsurdClaim:
		return "absurd-claim"
	case ByzPoisonedMetadata:
		return "poisoned-metadata"
	case ByzReplay:
		return "replay"
	case ByzOversizedClaim:
		return "oversized-claim"
	case ByzPhaseDesync:
		return "phase-desync"
	case ByzFlood:
		return "flood"
	default:
		return fmt.Sprintf("ByzStrategy(%d)", int(s))
	}
}

// ByzantinePeer is one adversarial remote. It always dials as the contact
// initiator (the initiator writes first at every round, so the adversary
// controls exactly which hostile bytes the honest responder reads).
type ByzantinePeer struct {
	// Node is the identity the adversary claims.
	Node model.NodeID
	// Strategy picks the misbehaviour.
	Strategy ByzStrategy
	// Time is the clock the adversary advertises. Post-hello strategies
	// must pass the honest node's skew gate to reach their attack point,
	// so set this near the honest node's clock (ByzPoisonedMetadata lies
	// in the metadata timestamps instead, where the gate it is testing
	// lives).
	Time float64
	// Seed makes the adversary's nonces reproducible.
	Seed int64

	rng *rand.Rand
}

// Contact runs one adversarial contact over conn and closes it on the way
// out (the adversary walks out of radio range; the honest side sees EOF
// rather than a hung frame deadline). The returned error is the
// adversary's own view of the exchange — usually the honest node hanging
// up mid-attack — and is informational only: the property the harness
// checks lives on the honest side.
func (b *ByzantinePeer) Contact(conn io.ReadWriter) error {
	if b.rng == nil {
		b.rng = rand.New(rand.NewSource(b.Seed))
	}
	defer func() {
		if c, ok := conn.(io.Closer); ok {
			_ = c.Close()
		}
	}()

	hello := wire.Hello{
		Node:         b.Node,
		Lambda:       0.01,
		DeliveryProb: 0.5,
		Time:         b.Time,
		Nonce:        b.rng.Uint64(),
		Capacity:     64 << 20,
	}
	if b.Strategy == ByzAbsurdClaim {
		hello.DeliveryProb = 42
		hello.Lambda = -3
	}
	wc, _, err := wire.Negotiate(conn, hello, wire.Params{}, true)
	if err != nil {
		return err
	}

	switch b.Strategy {
	case ByzAbsurdClaim:
		// The hello already carried the attack; the honest node aborts
		// without writing, so just leave.
		return nil
	case ByzPhaseDesync:
		// A plan-phase message where the metadata round is due.
		return wc.Write(wire.PhotoRequest{IDs: []model.PhotoID{1}})
	case ByzPoisonedMetadata:
		return wc.Write(wire.Metadata{Entries: []wire.MetaEntry{
			b.entry(0),
			{Node: b.Node + 1, Lambda: 0.1, P: 0.5, Timestamp: b.Time + 1e9,
				Photos: model.PhotoList{b.photo(1, 4<<20, math.NaN())}},
		}})
	case ByzReplay:
		e := b.entry(0)
		return wc.Write(wire.Metadata{Entries: []wire.MetaEntry{e, e}})
	case ByzOversizedClaim:
		e := b.entry(0)
		e.Photos = model.PhotoList{b.photo(0, 1<<60, 0)}
		return wc.Write(wire.Metadata{Entries: []wire.MetaEntry{e}})
	case ByzFlood:
		// Well-formed up to the metadata exchange, then walk away; the
		// damage is in how often the harness redials.
		if err := wc.Write(wire.Metadata{Entries: []wire.MetaEntry{b.entry(0)}}); err != nil {
			return err
		}
		_, err := wc.Read()
		return err
	default:
		return fmt.Errorf("unknown byzantine strategy %v", b.Strategy)
	}
}

// entry builds a well-formed metadata entry for the adversary's claimed
// identity, holding one plausible photo.
func (b *ByzantinePeer) entry(seq uint32) wire.MetaEntry {
	return wire.MetaEntry{
		Node:      b.Node,
		Lambda:    0.01,
		P:         0.5,
		Timestamp: b.Time,
		Photos:    model.PhotoList{b.photo(seq, 4<<20, 0)},
	}
}

// photo builds a photo owned by the adversary; size and x let strategies
// poison single fields while the rest stays decodable.
func (b *ByzantinePeer) photo(seq uint32, size int64, x float64) model.Photo {
	return model.Photo{
		ID:          model.MakePhotoID(b.Node, seq),
		Owner:       b.Node,
		Location:    geo.Vec{X: x, Y: 10},
		Range:       120,
		FOV:         geo.Radians(60),
		Orientation: 0,
		Size:        size,
	}
}
