// Package faults is a seeded, deterministic fault model for the disruption
// the paper's disaster setting implies but the benign simulator omits: node
// crash/rejoin churn (with storage loss), contact drops and truncation,
// frame loss and corruption mid-transfer, gateway outages, and per-node
// clock skew.
//
// The model is injectable into both layers of the repository. The simulator
// (internal/sim) consumes it event-wise: contacts of down nodes are
// filtered, crashes wipe storages, and a lost frame aborts the session with
// the paper's discard-unfinished semantics. The live prototype path
// (internal/peer, internal/wire) consumes it byte-wise through Transport,
// which corrupts or drops frames on the way out so the hardened peer's
// checksums, deadlines, and abort paths can be exercised.
//
// Determinism is the design centre: per-node schedules (crash times, skew)
// are drawn once from a seeded RNG in node order, and per-contact decisions
// (drop, truncate, outage, frame loss) are pure hashes of the contact
// identity and the seed — independent of the order in which the engine asks.
// Two runs with the same configuration and seed make identical decisions;
// a zero-valued configuration is a strict no-op (Enabled reports false and
// callers skip the model entirely).
package faults

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"photodtn/internal/model"
	"photodtn/internal/trace"
)

// ErrBadFaultConfig reports an invalid fault configuration.
var ErrBadFaultConfig = errors.New("faults: bad config")

// Config parameterises the fault model. The zero value disables every
// fault; all probabilities are in [0, 1].
type Config struct {
	// Seed drives the fault realisation. It is mixed with the run seed so
	// averaged runs see independent fault draws while staying reproducible.
	Seed int64
	// NodeFailRate is the fraction of participant nodes that crash during
	// the run. A crash wipes the node's storage (the photos are lost).
	NodeFailRate float64
	// MeanDowntimeSec is the mean time a crashed node stays down before
	// rejoining (exponentially distributed). 0 means crashed nodes never
	// rejoin.
	MeanDowntimeSec float64
	// MeanUptimeSec, when positive together with MeanDowntimeSec, turns the
	// single crash into churn: after a rejoin the node crashes again after
	// an exponential uptime, losing its storage each time.
	MeanUptimeSec float64
	// ContactDropProb is the probability a scheduled node-to-node contact
	// never happens (nodes passed out of range, radio interference, ...).
	ContactDropProb float64
	// ContactTruncProb is the probability a surviving contact is truncated
	// to a uniformly random fraction of its duration (shortening its
	// transfer budget when bandwidth is finite).
	ContactTruncProb float64
	// FrameLossProb is the per-photo-transfer probability that a frame is
	// lost mid-flight. In the simulator a lost frame aborts the session
	// (the in-flight photo is discarded, §III-D); on the live path Transport
	// drops the frame and the peer's deadline ends the contact.
	FrameLossProb float64
	// FrameCorruptProb is the per-photo-transfer probability of frame
	// corruption. The simulator folds it into the abort probability (a
	// corrupt frame is detected by checksum and discarded, aborting the
	// session); Transport flips bytes so the wire checksum must catch it.
	FrameCorruptProb float64
	// GatewayOutageProb is the probability a periodic gateway contact with
	// the command center is lost to a satellite/backhaul outage.
	GatewayOutageProb float64
	// ClockSkewMaxSec bounds the per-node clock skew: each node's clock is
	// offset by a uniform draw from [-max, +max] seconds, shifting when its
	// photo events fire.
	ClockSkewMaxSec float64
}

// Enabled reports whether any fault is configured. A disabled config must
// be treated as "no fault model at all" by callers so the fault-free path
// stays bit-identical to a run without the fault layer.
func (c Config) Enabled() bool {
	return c.NodeFailRate > 0 || c.ContactDropProb > 0 || c.ContactTruncProb > 0 ||
		c.FrameLossProb > 0 || c.FrameCorruptProb > 0 || c.GatewayOutageProb > 0 ||
		c.ClockSkewMaxSec > 0
}

// Validate checks ranges.
func (c Config) Validate() error {
	probs := []struct {
		name string
		v    float64
	}{
		{"NodeFailRate", c.NodeFailRate},
		{"ContactDropProb", c.ContactDropProb},
		{"ContactTruncProb", c.ContactTruncProb},
		{"FrameLossProb", c.FrameLossProb},
		{"FrameCorruptProb", c.FrameCorruptProb},
		{"GatewayOutageProb", c.GatewayOutageProb},
	}
	for _, p := range probs {
		if p.v < 0 || p.v > 1 || math.IsNaN(p.v) {
			return fmt.Errorf("%w: %s = %v outside [0,1]", ErrBadFaultConfig, p.name, p.v)
		}
	}
	if c.MeanDowntimeSec < 0 || c.MeanUptimeSec < 0 || c.ClockSkewMaxSec < 0 {
		return fmt.Errorf("%w: negative duration", ErrBadFaultConfig)
	}
	return nil
}

// Crash is one scheduled node crash.
type Crash struct {
	// Time is the crash instant in seconds.
	Time float64
	// Node is the crashing participant.
	Node model.NodeID
}

// interval is one [Start, End) downtime window.
type interval struct {
	start, end float64
}

// Model is an instantiated fault realisation over a fixed node population
// and span. It is immutable after construction and safe for concurrent use.
type Model struct {
	cfg     Config
	seed    uint64
	span    float64
	down    [][]interval // index 1..nodes; index 0 (command center) never fails
	skew    []float64
	crashes []Crash
	// pAbort is the combined per-transfer session-abort probability from
	// frame loss and corruption.
	pAbort float64
}

// NewModel draws the fault realisation for a run. runSeed is the simulation
// run's own seed; it is mixed with cfg.Seed so repeated runs of an averaged
// experiment see independent (but reproducible) fault draws.
func NewModel(cfg Config, nodes int, span float64, runSeed int64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nodes < 0 || span < 0 || math.IsNaN(span) {
		return nil, fmt.Errorf("%w: nodes %d span %v", ErrBadFaultConfig, nodes, span)
	}
	m := &Model{
		cfg:    cfg,
		seed:   mix(uint64(cfg.Seed), uint64(runSeed)),
		span:   span,
		down:   make([][]interval, nodes+1),
		skew:   make([]float64, nodes+1),
		pAbort: 1 - (1-cfg.FrameLossProb)*(1-cfg.FrameCorruptProb),
	}
	rng := rand.New(rand.NewSource(int64(m.seed)))
	// Per-node schedules are drawn in node order so the realisation depends
	// only on (cfg, nodes, span, seeds), never on query order.
	for n := 1; n <= nodes; n++ {
		if cfg.ClockSkewMaxSec > 0 {
			m.skew[n] = (2*rng.Float64() - 1) * cfg.ClockSkewMaxSec
		}
		if cfg.NodeFailRate <= 0 || rng.Float64() >= cfg.NodeFailRate {
			continue
		}
		t := rng.Float64() * span
		for t < span {
			end := math.Inf(1)
			if cfg.MeanDowntimeSec > 0 {
				end = t + rng.ExpFloat64()*cfg.MeanDowntimeSec
			}
			m.down[n] = append(m.down[n], interval{start: t, end: end})
			m.crashes = append(m.crashes, Crash{Time: t, Node: model.NodeID(n)})
			if math.IsInf(end, 1) || cfg.MeanUptimeSec <= 0 {
				break
			}
			t = end + rng.ExpFloat64()*cfg.MeanUptimeSec
		}
	}
	return m, nil
}

// Crashes returns the scheduled crashes in node order (the engine sorts its
// event stream by time anyway). The slice must not be mutated.
func (m *Model) Crashes() []Crash { return m.crashes }

// Down reports whether node n is crashed at time t. The command center
// (node 0) never fails.
func (m *Model) Down(n model.NodeID, t float64) bool {
	if int(n) <= 0 || int(n) >= len(m.down) {
		return false
	}
	for _, iv := range m.down[n] {
		if t >= iv.start && t < iv.end {
			return true
		}
	}
	return false
}

// Skew returns node n's clock skew in seconds (0 for the command center and
// out-of-range IDs).
func (m *Model) Skew(n model.NodeID) float64 {
	if int(n) <= 0 || int(n) >= len(m.skew) {
		return 0
	}
	return m.skew[n]
}

// Per-contact decisions are salted hashes so they are independent of each
// other and of evaluation order.
const (
	saltKey = iota
	saltDrop
	saltTrunc
	saltTruncFrac
	saltOutage
	saltFrame
)

// DropContact reports whether the node-to-node contact is dropped entirely.
func (m *Model) DropContact(c trace.Contact) bool {
	return m.cfg.ContactDropProb > 0 && m.contactU(c, saltDrop) < m.cfg.ContactDropProb
}

// TruncFactor returns the fraction of the contact's duration that survives
// truncation (1 when the contact is untouched).
func (m *Model) TruncFactor(c trace.Contact) float64 {
	if m.cfg.ContactTruncProb <= 0 || m.contactU(c, saltTrunc) >= m.cfg.ContactTruncProb {
		return 1
	}
	return m.contactU(c, saltTruncFrac)
}

// GatewayOutage reports whether a gateway→command-center contact is lost to
// an outage.
func (m *Model) GatewayOutage(c trace.Contact) bool {
	return m.cfg.GatewayOutageProb > 0 && m.contactU(c, saltOutage) < m.cfg.GatewayOutageProb
}

// FrameLost reports whether the transfer of photo id within the contact
// identified by key loses (or corrupts) a frame, aborting the session. The
// decision is deterministic per (model, contact, photo).
func (m *Model) FrameLost(key uint64, id model.PhotoID) bool {
	if m.pAbort <= 0 {
		return false
	}
	return u01(mix(mix(m.seed, key), uint64(id))^uint64(saltFrame)) < m.pAbort
}

// ContactKey derives the stable identity of a contact used for frame-level
// decisions.
func ContactKey(c trace.Contact) uint64 {
	h := mix(math.Float64bits(c.Start), math.Float64bits(c.End))
	h = mix(h, uint64(uint32(c.A)))
	return mix(h, uint64(uint32(c.B)))
}

// contactU returns a uniform [0,1) draw for the contact under the salt.
func (m *Model) contactU(c trace.Contact, salt uint64) float64 {
	return u01(mix(m.seed, ContactKey(c)) ^ (salt * 0x9e3779b97f4a7c15))
}

// mix combines two words with a splitmix64-style finaliser.
func mix(a, b uint64) uint64 {
	z := a ^ (b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2))
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// u01 maps a hash word to [0, 1).
func u01(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}
