package faults

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"photodtn/internal/journal"
)

// journalOps runs a fixed journal write sequence (3 appends, a checkpoint,
// 2 more appends) against the injector-backed filesystem, returning the
// first error.
func journalOps(dir string, fs journal.FS) error {
	j, err := journal.Open(dir, &journal.Options{FS: fs})
	if err != nil {
		return err
	}
	defer j.Close()
	for _, p := range []string{"a", "b", "c"} {
		if err := j.Append(1, []byte(p)); err != nil {
			return err
		}
	}
	if err := j.Checkpoint([]byte("abc")); err != nil {
		return err
	}
	for _, p := range []string{"d", "e"} {
		if err := j.Append(1, []byte(p)); err != nil {
			return err
		}
	}
	return nil
}

func TestDiskInjectorZeroConfigIsTransparent(t *testing.T) {
	dir := t.TempDir()
	inj := NewDiskInjector(DiskConfig{}, nil)
	if err := journalOps(dir, inj); err != nil {
		t.Fatal(err)
	}
	if inj.Dead() {
		t.Fatal("injector died without a configured fault")
	}
	if inj.Ops() == 0 {
		t.Fatal("injector counted no operations")
	}
}

// TestDiskInjectorCrashSweepAlwaysRecoverable kills the disk at every
// mutating operation of the journal write sequence and checks the journal
// recovers to a CRC-valid prefix every time — whatever the crash-point,
// reopening with a healthy filesystem must succeed and never replay a
// torn record.
func TestDiskInjectorCrashSweepAlwaysRecoverable(t *testing.T) {
	clean := NewDiskInjector(DiskConfig{}, nil)
	if err := journalOps(t.TempDir(), clean); err != nil {
		t.Fatal(err)
	}
	total := clean.Ops()

	for k := 1; k <= total; k++ {
		dir := t.TempDir()
		inj := NewDiskInjector(DiskConfig{FailAtOp: k, TornWrite: true}, nil)
		err := journalOps(dir, inj)
		if !inj.Dead() {
			t.Fatalf("crash-point %d: injector never fired", k)
		}
		if err == nil {
			// The fault can land on an operation whose failure the
			// sequence tolerates (e.g. the close-side of a checkpoint
			// reset); a died disk must still surface on later ops, which
			// Dead() above already guarantees.
			continue
		}
		if !errors.Is(err, ErrDiskFault) {
			t.Fatalf("crash-point %d: err = %v, want ErrDiskFault", k, err)
		}

		j, err := journal.Open(dir, nil)
		if err != nil {
			t.Fatalf("crash-point %d: recovery failed: %v", k, err)
		}
		for i, r := range j.Records() {
			if len(r.Payload) != 1 {
				t.Fatalf("crash-point %d: record %d has torn payload %q", k, i, r.Payload)
			}
		}
		_ = j.Close()
	}
}

func TestDiskInjectorTornWriteLeavesPrefix(t *testing.T) {
	dir := t.TempDir()
	// Ops: 1 = open wal; 2, 3 = first append write+sync; 4, 5 = second
	// append; 6 = third append write (dies; 6 mod 4 = 2 → half the frame
	// persists as a torn tail).
	inj := NewDiskInjector(DiskConfig{FailAtOp: 6, TornWrite: true}, nil)
	j, err := journal.Open(dir, &journal.Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(1, []byte("first-record")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(1, []byte("second-record")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(1, []byte("third-record")); !errors.Is(err, ErrDiskFault) {
		t.Fatalf("err = %v, want ErrDiskFault", err)
	}
	_ = j.Close()

	// The torn tail must be on disk (prefix of record 3) and recovery must
	// cut it back to exactly the first two records.
	j2, err := journal.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	st := j2.Stats()
	if st.Records != 2 || st.TruncatedBytes == 0 {
		t.Fatalf("stats = %+v, want 2 records and a truncated tail", st)
	}
	if string(j2.Records()[1].Payload) != "second-record" {
		t.Fatalf("surviving record = %q", j2.Records()[1].Payload)
	}
}

func TestDiskInjectorBitFlipCaughtByChecksum(t *testing.T) {
	dir := t.TempDir()
	// Op 4 is the second append's write (see above); flip a bit in it.
	inj := NewDiskInjector(DiskConfig{CorruptAtOp: 4}, nil)
	j, err := journal.Open(dir, &journal.Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	appendThree := func() {
		for _, p := range []string{"aaaaaaa", "bbbbbbb", "ccccccc"} {
			if err := j.Append(1, []byte(p)); err != nil {
				t.Fatal(err)
			}
		}
	}
	appendThree()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := journal.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	st := j2.Stats()
	if st.Records != 1 || st.TruncatedBytes == 0 {
		t.Fatalf("stats = %+v, want the corrupt record (and its successor) cut", st)
	}
	if string(j2.Records()[0].Payload) != "aaaaaaa" {
		t.Fatalf("surviving record = %q", j2.Records()[0].Payload)
	}
}

func TestDiskInjectorDeadDiskFailsReads(t *testing.T) {
	dir := t.TempDir()
	inj := NewDiskInjector(DiskConfig{FailAtOp: 1}, nil)
	if _, err := journal.Open(dir, &journal.Options{FS: inj}); !errors.Is(err, ErrDiskFault) {
		t.Fatalf("open on dead disk: err = %v, want ErrDiskFault", err)
	}
	if _, err := inj.ReadFile(filepath.Join(dir, "wal.log")); !errors.Is(err, ErrDiskFault) {
		t.Fatalf("read on dead disk: err = %v, want ErrDiskFault", err)
	}
	if _, err := inj.Stat(dir); !errors.Is(err, ErrDiskFault) {
		t.Fatalf("stat on dead disk: err = %v, want ErrDiskFault", err)
	}
	// The underlying directory is untouched and opens cleanly.
	if _, err := os.Stat(dir); err != nil {
		t.Fatal(err)
	}
	j, err := journal.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = j.Close()
}
