package faults

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"

	"photodtn/internal/model"
	"photodtn/internal/trace"
)

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
	if (Config{Seed: 42}).Enabled() {
		t.Fatal("seed alone must not enable the model")
	}
	enabled := []Config{
		{NodeFailRate: 0.1},
		{ContactDropProb: 0.1},
		{ContactTruncProb: 0.1},
		{FrameLossProb: 0.1},
		{FrameCorruptProb: 0.1},
		{GatewayOutageProb: 0.1},
		{ClockSkewMaxSec: 1},
	}
	for _, c := range enabled {
		if !c.Enabled() {
			t.Fatalf("config %+v should be enabled", c)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{NodeFailRate: -0.1},
		{NodeFailRate: 1.5},
		{ContactDropProb: 2},
		{FrameLossProb: math.NaN()},
		{MeanDowntimeSec: -1},
		{ClockSkewMaxSec: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); !errors.Is(err, ErrBadFaultConfig) {
			t.Fatalf("config %+v: err = %v, want ErrBadFaultConfig", c, err)
		}
	}
	if err := (Config{NodeFailRate: 1, FrameLossProb: 0.5}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestModelDeterminism(t *testing.T) {
	cfg := Config{
		Seed: 7, NodeFailRate: 0.5, MeanDowntimeSec: 100, MeanUptimeSec: 500,
		ContactDropProb: 0.3, ContactTruncProb: 0.2, FrameLossProb: 0.1,
		GatewayOutageProb: 0.25, ClockSkewMaxSec: 30,
	}
	a, err := NewModel(cfg, 50, 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewModel(cfg, 50, 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Crashes(), b.Crashes()) {
		t.Fatal("crash schedules differ across identical models")
	}
	c := trace.Contact{Start: 123, End: 456, A: 3, B: 9}
	if a.DropContact(c) != b.DropContact(c) || a.TruncFactor(c) != b.TruncFactor(c) {
		t.Fatal("contact decisions differ across identical models")
	}
	key := ContactKey(c)
	for id := model.PhotoID(0); id < 64; id++ {
		if a.FrameLost(key, id) != b.FrameLost(key, id) {
			t.Fatalf("frame decision for photo %d differs", id)
		}
	}
	// A different run seed must give a different realisation (with these
	// rates, 50 nodes make a collision astronomically unlikely).
	c2, err := NewModel(cfg, 50, 10000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Crashes(), c2.Crashes()) && a.Skew(1) == c2.Skew(1) {
		t.Fatal("run seed does not vary the realisation")
	}
}

func TestCrashSchedules(t *testing.T) {
	const span = 5000.0
	m, err := NewModel(Config{NodeFailRate: 1}, 40, span, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.Crashes()); got != 40 {
		t.Fatalf("crashes = %d, want one per node at rate 1", got)
	}
	for _, c := range m.Crashes() {
		if c.Time < 0 || c.Time >= span {
			t.Fatalf("crash at %v outside [0, span)", c.Time)
		}
		// No rejoin configured: down from the crash to the end of time.
		if !m.Down(c.Node, c.Time) || !m.Down(c.Node, span*10) {
			t.Fatalf("node %v not down after its crash", c.Node)
		}
		if m.Down(c.Node, c.Time-1e-6) {
			t.Fatalf("node %v down before its crash", c.Node)
		}
	}
	if m.Down(model.CommandCenter, span/2) {
		t.Fatal("command center must never fail")
	}
}

func TestRejoinAndChurn(t *testing.T) {
	const span = 1e6
	m, err := NewModel(Config{NodeFailRate: 1, MeanDowntimeSec: 50, MeanUptimeSec: 1000}, 20, span, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Crashes()) <= 20 {
		t.Fatalf("churn produced only %d crashes for 20 nodes over a long span", len(m.Crashes()))
	}
	// Every down interval must end (rejoin configured).
	for n := 1; n <= 20; n++ {
		for _, iv := range m.down[n] {
			if math.IsInf(iv.end, 1) {
				t.Fatalf("node %d never rejoins despite MeanDowntimeSec", n)
			}
			if !m.Down(model.NodeID(n), iv.start) || m.Down(model.NodeID(n), iv.end) {
				t.Fatalf("interval [%v,%v) of node %d not honoured", iv.start, iv.end, n)
			}
		}
	}
}

func TestContactDecisionRates(t *testing.T) {
	m, err := NewModel(Config{ContactDropProb: 0.3, GatewayOutageProb: 0.5, ContactTruncProb: 0.4}, 10, 1e6, 5)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	var drops, outages, truncs int
	for i := 0; i < n; i++ {
		c := trace.Contact{Start: float64(i), End: float64(i) + 10, A: model.NodeID(i%9 + 1), B: model.NodeID((i+3)%9 + 1)}
		if m.DropContact(c) {
			drops++
		}
		if m.GatewayOutage(c) {
			outages++
		}
		if f := m.TruncFactor(c); f < 1 {
			truncs++
			if f < 0 {
				t.Fatalf("negative truncation factor %v", f)
			}
		}
	}
	check := func(name string, got int, want float64) {
		frac := float64(got) / n
		if math.Abs(frac-want) > 0.02 {
			t.Fatalf("%s rate %.3f, want ≈%.2f", name, frac, want)
		}
	}
	check("drop", drops, 0.3)
	check("outage", outages, 0.5)
	check("trunc", truncs, 0.4)
}

func TestFrameLossRate(t *testing.T) {
	// Loss and corruption combine into one abort probability.
	m, err := NewModel(Config{FrameLossProb: 0.2, FrameCorruptProb: 0.1}, 5, 1000, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - (1-0.2)*(1-0.1)
	key := ContactKey(trace.Contact{Start: 1, End: 2, A: 1, B: 2})
	const n = 20000
	var lost int
	for i := 0; i < n; i++ {
		if m.FrameLost(key, model.PhotoID(i)) {
			lost++
		}
	}
	if frac := float64(lost) / n; math.Abs(frac-want) > 0.02 {
		t.Fatalf("frame loss rate %.3f, want ≈%.2f", frac, want)
	}
}

func TestSkewBounds(t *testing.T) {
	m, err := NewModel(Config{ClockSkewMaxSec: 60}, 30, 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	var nonZero int
	for n := 1; n <= 30; n++ {
		s := m.Skew(model.NodeID(n))
		if math.Abs(s) > 60 {
			t.Fatalf("skew %v exceeds bound", s)
		}
		if s != 0 {
			nonZero++
		}
	}
	if nonZero == 0 {
		t.Fatal("no node received skew")
	}
	if m.Skew(model.CommandCenter) != 0 || m.Skew(999) != 0 {
		t.Fatal("command center / out-of-range skew must be zero")
	}
}

func TestNewModelRejectsBadInput(t *testing.T) {
	if _, err := NewModel(Config{NodeFailRate: 2}, 5, 100, 1); !errors.Is(err, ErrBadFaultConfig) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewModel(Config{}, -1, 100, 1); !errors.Is(err, ErrBadFaultConfig) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewModel(Config{}, 5, math.NaN(), 1); !errors.Is(err, ErrBadFaultConfig) {
		t.Fatalf("err = %v", err)
	}
}

func TestTransportDropAndCorrupt(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTransport(&buf, 1, 0, 1) // drop everything
	if n, err := tr.Write([]byte("hello")); err != nil || n != 5 {
		t.Fatalf("dropped write: n=%d err=%v", n, err)
	}
	if buf.Len() != 0 || tr.Dropped() != 1 {
		t.Fatalf("drop not honoured: buffered %d, dropped %d", buf.Len(), tr.Dropped())
	}

	buf.Reset()
	tr = NewTransport(&buf, 0, 1, 2) // corrupt everything
	msg := []byte{1, 2, 3, 4}
	if _, err := tr.Write(msg); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes(); got[len(got)-1] == 4 {
		t.Fatal("corruption did not flip the trailing byte")
	}
	if !bytes.Equal(msg, []byte{1, 2, 3, 4}) {
		t.Fatal("Write mutated the caller's buffer")
	}
	if tr.Corrupted() != 1 {
		t.Fatalf("corrupted = %d", tr.Corrupted())
	}

	// Pass-through read.
	buf.Reset()
	buf.WriteString("data")
	out := make([]byte, 4)
	if n, err := tr.Read(out); err != nil || n != 4 || string(out) != "data" {
		t.Fatalf("read: n=%d err=%v out=%q", n, err, out)
	}
}
