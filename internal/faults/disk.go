package faults

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"

	"photodtn/internal/journal"
)

// ErrDiskFault is the error every operation returns once the injected disk
// has died. Callers treat it like a crashed process: the durable state on
// the underlying filesystem is whatever the completed operations left
// behind, and recovery happens by reopening the directory with a healthy
// filesystem.
var ErrDiskFault = errors.New("faults: injected disk failure")

// DiskConfig parameterises the disk fault injector. The zero value injects
// nothing. Operation indices are 1-based and count mutating operations
// only (open, write, sync, rename, truncate, remove) in execution order,
// so a crash-point sweep (FailAtOp = 1, 2, 3, ...) deterministically kills
// the disk at every distinct point of the write sequence.
type DiskConfig struct {
	// FailAtOp is the index of the mutating operation that fails; every
	// operation after it (including reads) fails too — the disk is gone.
	// 0 never fails.
	FailAtOp int
	// TornWrite makes the failing operation, when it is a write, persist a
	// deterministic prefix of its buffer before dying — the torn-write
	// case a write-ahead log must truncate on recovery.
	TornWrite bool
	// CorruptAtOp flips one bit of the buffer written by the given
	// mutating operation (when it is a write) and then reports success —
	// silent bit rot the reader's checksums must catch. 0 never corrupts.
	CorruptAtOp int
}

// DiskInjector wraps a journal.FS with deterministic fault injection. It
// is safe for concurrent use.
type DiskInjector struct {
	cfg   DiskConfig
	under journal.FS

	mu   sync.Mutex
	ops  int
	dead bool
}

// NewDiskInjector wraps under (nil = the real filesystem) with the
// configured faults.
func NewDiskInjector(cfg DiskConfig, under journal.FS) *DiskInjector {
	if under == nil {
		under = journal.OSFS{}
	}
	return &DiskInjector{cfg: cfg, under: under}
}

// Ops returns how many mutating operations have been attempted so far. A
// crash-point sweep uses the count of a clean run as its upper bound.
func (d *DiskInjector) Ops() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ops
}

// Dead reports whether the injected disk has died.
func (d *DiskInjector) Dead() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dead
}

// step accounts one mutating operation and reports what to do with it:
// fail it, corrupt it, or let it through.
func (d *DiskInjector) step() (fail, corrupt bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dead {
		return true, false
	}
	d.ops++
	if d.cfg.FailAtOp > 0 && d.ops >= d.cfg.FailAtOp {
		d.dead = true
		return true, false
	}
	return false, d.cfg.CorruptAtOp > 0 && d.ops == d.cfg.CorruptAtOp
}

// alive reports whether a non-mutating operation may proceed.
func (d *DiskInjector) alive() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return !d.dead
}

// OpenFile implements journal.FS.
func (d *DiskInjector) OpenFile(name string, flag int, perm fs.FileMode) (journal.File, error) {
	if fail, _ := d.step(); fail {
		return nil, fmt.Errorf("%w: open %s", ErrDiskFault, name)
	}
	f, err := d.under.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{d: d, f: f, name: name}, nil
}

// ReadFile implements journal.FS.
func (d *DiskInjector) ReadFile(name string) ([]byte, error) {
	if !d.alive() {
		return nil, fmt.Errorf("%w: read %s", ErrDiskFault, name)
	}
	return d.under.ReadFile(name)
}

// Rename implements journal.FS.
func (d *DiskInjector) Rename(oldpath, newpath string) error {
	if fail, _ := d.step(); fail {
		return fmt.Errorf("%w: rename %s", ErrDiskFault, oldpath)
	}
	return d.under.Rename(oldpath, newpath)
}

// Remove implements journal.FS.
func (d *DiskInjector) Remove(name string) error {
	if fail, _ := d.step(); fail {
		return fmt.Errorf("%w: remove %s", ErrDiskFault, name)
	}
	return d.under.Remove(name)
}

// Truncate implements journal.FS.
func (d *DiskInjector) Truncate(name string, size int64) error {
	if fail, _ := d.step(); fail {
		return fmt.Errorf("%w: truncate %s", ErrDiskFault, name)
	}
	return d.under.Truncate(name, size)
}

// MkdirAll implements journal.FS.
func (d *DiskInjector) MkdirAll(path string, perm fs.FileMode) error {
	if !d.alive() {
		return fmt.Errorf("%w: mkdir %s", ErrDiskFault, path)
	}
	return d.under.MkdirAll(path, perm)
}

// Stat implements journal.FS.
func (d *DiskInjector) Stat(name string) (fs.FileInfo, error) {
	if !d.alive() {
		return nil, fmt.Errorf("%w: stat %s", ErrDiskFault, name)
	}
	return d.under.Stat(name)
}

// faultFile threads the injector through file writes and syncs.
type faultFile struct {
	d    *DiskInjector
	f    journal.File
	name string
}

// Write implements journal.File. The dying write persists a deterministic
// prefix when TornWrite is set; a corrupting write flips one bit and
// succeeds.
func (f *faultFile) Write(p []byte) (int, error) {
	fail, corrupt := f.d.step()
	if fail {
		if f.d.cfg.TornWrite && len(p) > 0 {
			// Prefix length cycles through 0, 1/4, 1/2, 3/4 of the buffer
			// as the crash-point advances, covering torn headers, torn
			// payloads, and torn trailers across a sweep.
			n := len(p) * (f.d.Ops() % 4) / 4
			if n > 0 {
				_, _ = f.f.Write(p[:n])
				_ = f.f.Sync()
			}
		}
		return 0, fmt.Errorf("%w: write %s", ErrDiskFault, f.name)
	}
	if corrupt && len(p) > 0 {
		flipped := append([]byte(nil), p...)
		flipped[len(flipped)/2] ^= 0x04
		return f.f.Write(flipped)
	}
	return f.f.Write(p)
}

// Sync implements journal.File.
func (f *faultFile) Sync() error {
	if fail, _ := f.d.step(); fail {
		return fmt.Errorf("%w: sync %s", ErrDiskFault, f.name)
	}
	return f.f.Sync()
}

// Close implements journal.File. Close never injects: a dying process
// cannot fail to release its descriptors, and the harness relies on the
// underlying file being closed so the directory can be reopened.
func (f *faultFile) Close() error { return f.f.Close() }
