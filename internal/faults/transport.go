package faults

import (
	"io"
	"math/rand"
	"sync"
)

// Transport wraps an io.ReadWriter with deterministic write-side faults:
// whole writes silently dropped (frame loss on a lossy link) or corrupted by
// a single flipped byte (bit errors the wire checksum must catch). Each
// wire frame goes out as one Write call, so a dropped write is a lost frame
// and a flipped byte is a corrupt frame.
//
// Reads pass through untouched — injecting on one side of a duplex link
// already exercises both peers' failure paths, and keeping reads clean makes
// tests easier to reason about.
type Transport struct {
	rw          io.ReadWriter
	lossProb    float64
	corruptProb float64

	mu        sync.Mutex
	rng       *rand.Rand
	dropped   int
	corrupted int
}

// NewTransport wraps rw. lossProb drops writes, corruptProb flips the last
// byte of a write (for a wire frame that is the checksum trailer, so
// corruption is always detectable); both are evaluated per Write from the
// seeded RNG, loss first.
func NewTransport(rw io.ReadWriter, lossProb, corruptProb float64, seed int64) *Transport {
	return &Transport{
		rw:          rw,
		lossProb:    lossProb,
		corruptProb: corruptProb,
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// Read implements io.Reader (pass-through).
func (t *Transport) Read(p []byte) (int, error) { return t.rw.Read(p) }

// Write implements io.Writer with fault injection. A dropped write reports
// full success to the caller, as a lossy datagram link would.
func (t *Transport) Write(p []byte) (int, error) {
	t.mu.Lock()
	drop := t.lossProb > 0 && t.rng.Float64() < t.lossProb
	corrupt := !drop && t.corruptProb > 0 && t.rng.Float64() < t.corruptProb
	if drop {
		t.dropped++
	}
	if corrupt {
		t.corrupted++
	}
	t.mu.Unlock()
	if drop {
		return len(p), nil
	}
	if corrupt && len(p) > 0 {
		q := append([]byte(nil), p...)
		q[len(q)-1] ^= 0xFF
		n, err := t.rw.Write(q)
		if n > len(p) {
			n = len(p)
		}
		return n, err
	}
	return t.rw.Write(p)
}

// Dropped returns the number of writes silently discarded so far.
func (t *Transport) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Corrupted returns the number of writes corrupted so far.
func (t *Transport) Corrupted() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.corrupted
}
