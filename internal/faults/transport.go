package faults

import (
	"errors"
	"io"
	"math/rand"
	"sync"
)

// Transport wraps an io.ReadWriter with deterministic write-side faults:
// whole writes silently dropped (frame loss on a lossy link) or corrupted by
// a single flipped byte (bit errors the wire checksum must catch). Each
// wire frame goes out as one Write call, so a dropped write is a lost frame
// and a flipped byte is a corrupt frame.
//
// Reads pass through untouched — injecting on one side of a duplex link
// already exercises both peers' failure paths, and keeping reads clean makes
// tests easier to reason about.
type Transport struct {
	rw          io.ReadWriter
	lossProb    float64
	corruptProb float64

	mu        sync.Mutex
	rng       *rand.Rand
	dropped   int
	corrupted int
}

// NewTransport wraps rw. lossProb drops writes, corruptProb flips the last
// byte of a write (for a wire frame that is the checksum trailer, so
// corruption is always detectable); both are evaluated per Write from the
// seeded RNG, loss first.
func NewTransport(rw io.ReadWriter, lossProb, corruptProb float64, seed int64) *Transport {
	return &Transport{
		rw:          rw,
		lossProb:    lossProb,
		corruptProb: corruptProb,
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// Read implements io.Reader (pass-through).
func (t *Transport) Read(p []byte) (int, error) { return t.rw.Read(p) }

// Write implements io.Writer with fault injection. A dropped write reports
// full success to the caller, as a lossy datagram link would.
func (t *Transport) Write(p []byte) (int, error) {
	t.mu.Lock()
	drop := t.lossProb > 0 && t.rng.Float64() < t.lossProb
	corrupt := !drop && t.corruptProb > 0 && t.rng.Float64() < t.corruptProb
	if drop {
		t.dropped++
	}
	if corrupt {
		t.corrupted++
	}
	t.mu.Unlock()
	if drop {
		return len(p), nil
	}
	if corrupt && len(p) > 0 {
		q := append([]byte(nil), p...)
		q[len(q)-1] ^= 0xFF
		n, err := t.rw.Write(q)
		if n > len(p) {
			n = len(p)
		}
		return n, err
	}
	return t.rw.Write(p)
}

// ErrKilled reports a connection ended by a KillTransport's schedule — the
// live-path stand-in for a node dying (or walking out of radio range)
// mid-contact.
var ErrKilled = errors.New("faults: connection killed mid-contact")

// KillTransport wraps an io.ReadWriter and kills the connection after a
// fixed number of writes: the scheduled write and everything after it fail
// with ErrKilled, and an underlying io.Closer is closed so the remote sees
// the death too (EOF / reset) instead of waiting out its frame deadline.
// It is the per-connection fault schedule the concurrent-serving suites
// layer over N simultaneous dialers: each dialer dies at a different,
// deterministic point of the contact protocol.
type KillTransport struct {
	rw io.ReadWriter

	mu        sync.Mutex
	remaining int
	killed    bool
}

// NewKillTransport wraps rw; the connection dies on the writes-th write
// (counting from 1). writes < 1 kills on the first write.
func NewKillTransport(rw io.ReadWriter, writes int) *KillTransport {
	if writes < 1 {
		writes = 1
	}
	return &KillTransport{rw: rw, remaining: writes - 1}
}

// Killed reports whether the schedule has fired.
func (t *KillTransport) Killed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.killed
}

// Read implements io.Reader; after the kill it fails with ErrKilled.
func (t *KillTransport) Read(p []byte) (int, error) {
	if t.Killed() {
		return 0, ErrKilled
	}
	return t.rw.Read(p)
}

// Write implements io.Writer with the kill schedule.
func (t *KillTransport) Write(p []byte) (int, error) {
	t.mu.Lock()
	if !t.killed && t.remaining == 0 {
		t.killed = true
		if c, ok := t.rw.(io.Closer); ok {
			_ = c.Close()
		}
	}
	if t.killed {
		t.mu.Unlock()
		return 0, ErrKilled
	}
	t.remaining--
	t.mu.Unlock()
	return t.rw.Write(p)
}

// ByteKillTransport wraps an io.ReadWriter and kills the connection after a
// fixed number of bytes have been written. Unlike KillTransport, the cut can
// land in the middle of a wire frame: the write that crosses the threshold
// sends only the prefix before the connection closes, so the remote reads a
// torn frame. This is the mid-chunk death the resumable-transfer suites
// need — a chunk stream interrupted partway through a frame, not neatly
// between frames.
type ByteKillTransport struct {
	rw io.ReadWriter

	mu        sync.Mutex
	remaining int64
	killed    bool
}

// NewByteKillTransport wraps rw; the connection dies once bytes bytes have
// gone out (bytes < 1 kills on the first write). The crossing write sends
// its allowed prefix, then fails with ErrKilled.
func NewByteKillTransport(rw io.ReadWriter, bytes int64) *ByteKillTransport {
	if bytes < 1 {
		bytes = 0
	}
	return &ByteKillTransport{rw: rw, remaining: bytes}
}

// Killed reports whether the schedule has fired.
func (t *ByteKillTransport) Killed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.killed
}

// Read passes through: the kill surfaces to readers via the underlying
// Close, not a synthetic error — on a synchronous transport the torn
// prefix only drains if both directions keep flowing until the close.
func (t *ByteKillTransport) Read(p []byte) (int, error) {
	return t.rw.Read(p)
}

// Write implements io.Writer with the byte schedule.
func (t *ByteKillTransport) Write(p []byte) (int, error) {
	t.mu.Lock()
	if t.killed {
		t.mu.Unlock()
		return 0, ErrKilled
	}
	allowed := int64(len(p))
	torn := allowed >= t.remaining
	if torn {
		allowed = t.remaining
		t.killed = true
	}
	t.remaining -= allowed
	t.mu.Unlock()

	n := 0
	if allowed > 0 {
		var err error
		n, err = t.rw.Write(p[:allowed])
		if err != nil {
			return n, err
		}
	}
	if torn {
		if c, ok := t.rw.(io.Closer); ok {
			_ = c.Close()
		}
		return n, ErrKilled
	}
	return n, nil
}

// Dropped returns the number of writes silently discarded so far.
func (t *Transport) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Corrupted returns the number of writes corrupted so far.
func (t *Transport) Corrupted() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.corrupted
}
