package prophet

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"photodtn/internal/model"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero pinit", func(c *Config) { c.PInit = 0 }},
		{"pinit too big", func(c *Config) { c.PInit = 1.1 }},
		{"negative beta", func(c *Config) { c.Beta = -0.1 }},
		{"beta too big", func(c *Config) { c.Beta = 1.5 }},
		{"zero gamma", func(c *Config) { c.Gamma = 0 }},
		{"gamma too big", func(c *Config) { c.Gamma = 2 }},
		{"zero aging unit", func(c *Config) { c.AgingUnit = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); !errors.Is(err, ErrBadConfig) {
				t.Fatalf("err = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestEncounterReinforcement(t *testing.T) {
	tab := NewTable(1, DefaultConfig())
	if got := tab.P(2); got != 0 {
		t.Fatalf("initial P = %v", got)
	}
	tab.Encounter(2, 0)
	if got := tab.P(2); got != 0.75 {
		t.Fatalf("after one encounter P = %v, want 0.75", got)
	}
	tab.Encounter(2, 0)
	want := 0.75 + 0.25*0.75
	if got := tab.P(2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("after two encounters P = %v, want %v", got, want)
	}
}

func TestEncounterSelfIgnored(t *testing.T) {
	tab := NewTable(1, DefaultConfig())
	tab.Encounter(1, 0)
	if tab.P(1) != 1 {
		t.Fatal("self predictability must stay 1")
	}
	if len(tab.Snapshot()) != 0 {
		t.Fatal("self encounter should not create entries")
	}
}

func TestAging(t *testing.T) {
	cfg := DefaultConfig()
	tab := NewTable(1, cfg)
	tab.Encounter(2, 0)
	tab.Age(10 * cfg.AgingUnit)
	want := 0.75 * math.Pow(cfg.Gamma, 10)
	if got := tab.P(2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("aged P = %v, want %v", got, want)
	}
}

func TestAgingIdempotentAndMonotonic(t *testing.T) {
	cfg := DefaultConfig()
	tab := NewTable(1, cfg)
	tab.Encounter(2, 0)
	tab.Age(3600)
	p1 := tab.P(2)
	tab.Age(3600) // same time: no-op
	if tab.P(2) != p1 {
		t.Fatal("aging at the same timestamp changed P")
	}
	tab.Age(1000) // time going backwards: no-op
	if tab.P(2) != p1 {
		t.Fatal("aging backwards changed P")
	}
}

func TestAgingDropsTinyEntries(t *testing.T) {
	cfg := DefaultConfig()
	tab := NewTable(1, cfg)
	tab.Encounter(2, 0)
	tab.Age(1e9) // enormous gap: entry should be garbage collected
	if len(tab.Snapshot()) != 0 {
		t.Fatal("tiny entries not dropped")
	}
}

func TestTransitivity(t *testing.T) {
	cfg := DefaultConfig()
	a := NewTable(1, cfg)
	b := NewTable(2, cfg)
	// b knows the command center well.
	b.Encounter(model.CommandCenter, 0)
	// a meets b.
	Exchange(a, b, 0)
	// P(a,cc) ≥ P(a,b)·P(b,cc)·β = 0.75·0.75·0.25.
	want := 0.75 * 0.75 * 0.25
	if got := a.P(model.CommandCenter); math.Abs(got-want) > 1e-12 {
		t.Fatalf("transitive P = %v, want %v", got, want)
	}
	// Transitivity never lowers an existing value.
	a.Transitive(2, map[model.NodeID]float64{model.CommandCenter: 0.0001})
	if got := a.P(model.CommandCenter); got < want {
		t.Fatalf("transitivity lowered P to %v", got)
	}
}

func TestTransitiveSkipsOwner(t *testing.T) {
	a := NewTable(1, DefaultConfig())
	a.Encounter(2, 0)
	a.Transitive(2, map[model.NodeID]float64{1: 0.9})
	if got := a.P(1); got != 1 {
		t.Fatalf("owner P = %v", got)
	}
	if _, ok := a.Snapshot()[1]; ok {
		t.Fatal("owner entry created by transitivity")
	}
}

func TestTransitiveUnknownPeer(t *testing.T) {
	a := NewTable(1, DefaultConfig())
	// Never met node 5: transitivity through it contributes nothing.
	a.Transitive(5, map[model.NodeID]float64{3: 0.9})
	if got := a.P(3); got != 0 {
		t.Fatalf("P = %v, want 0", got)
	}
}

func TestDeliveryProb(t *testing.T) {
	cfg := DefaultConfig()
	cc := NewTable(model.CommandCenter, cfg)
	if cc.DeliveryProb(0) != 1 {
		t.Fatal("command center delivery prob must be 1")
	}
	n := NewTable(3, cfg)
	if n.DeliveryProb(0) != 0 {
		t.Fatal("fresh node delivery prob must be 0")
	}
	n.Encounter(model.CommandCenter, 0)
	if got := n.DeliveryProb(0); got != 0.75 {
		t.Fatalf("delivery prob = %v", got)
	}
	// DeliveryProb applies aging.
	if got := n.DeliveryProb(100 * cfg.AgingUnit); got >= 0.75 {
		t.Fatalf("delivery prob did not age: %v", got)
	}
}

func TestProbabilitiesStayInRange(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(17))
	tables := make([]*Table, 10)
	for i := range tables {
		tables[i] = NewTable(model.NodeID(i), cfg)
	}
	now := 0.0
	for step := 0; step < 2000; step++ {
		now += rng.ExpFloat64() * 1800
		i, j := rng.Intn(10), rng.Intn(10)
		if i == j {
			continue
		}
		Exchange(tables[i], tables[j], now)
		for _, tab := range tables {
			for dst, p := range tab.Snapshot() {
				if p < 0 || p > 1 {
					t.Fatalf("P(%v,%v) = %v out of range", tab.owner, dst, p)
				}
			}
		}
	}
}

func TestFrequentPairDominates(t *testing.T) {
	// Node 1 meets node 2 often and node 3 rarely; P(1,2) must exceed P(1,3).
	cfg := DefaultConfig()
	a := NewTable(1, cfg)
	now := 0.0
	for i := 0; i < 50; i++ {
		now += 3600
		a.Encounter(2, now)
		if i%10 == 0 {
			a.Encounter(3, now)
		}
	}
	if a.P(2) <= a.P(3) {
		t.Fatalf("P(1,2)=%v should exceed P(1,3)=%v", a.P(2), a.P(3))
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	a := NewTable(1, DefaultConfig())
	a.Encounter(2, 0)
	s := a.Snapshot()
	s[2] = 0
	if a.P(2) != 0.75 {
		t.Fatal("snapshot mutation leaked into table")
	}
}

func TestOwner(t *testing.T) {
	if got := NewTable(7, DefaultConfig()).Owner(); got != 7 {
		t.Fatalf("Owner = %v", got)
	}
}

// TestEncounterAgeOrderIndependent pins the commutativity fix: a contact
// timestamped at — or before — an aging step must leave the same
// predictability whichever of the two events is processed first. The
// "before" case is reachable under clock skew / out-of-order delivery and
// used to diverge by ~4e-3 on the default constants.
func TestEncounterAgeOrderIndependent(t *testing.T) {
	cfg := DefaultConfig()
	for _, tc := range []struct {
		name               string
		contact, agedUntil float64
	}{
		{"same instant", 9000, 9000},
		{"contact behind aging", 8000, 9000},
		{"contact far behind aging", 1000, 50000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seed := func() *Table {
				tab := NewTable(1, cfg)
				tab.Encounter(2, 0)
				tab.Encounter(2, 500)
				return tab
			}
			ageFirst := seed()
			ageFirst.Age(tc.agedUntil)
			ageFirst.Encounter(2, tc.contact)
			ageFirst.Age(tc.agedUntil) // settle both tables at the same time

			contactFirst := seed()
			contactFirst.Encounter(2, tc.contact)
			contactFirst.Age(tc.agedUntil)

			a, b := ageFirst.P(2), contactFirst.P(2)
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("order-dependent: age-first %v vs contact-first %v (diff %g)",
					a, b, math.Abs(a-b))
			}
		})
	}
}

// TestEncounterBehindAgingStaysInRange: the undo-decay path must never push
// a probability above 1, even when the stored value is already near the
// decayed maximum.
func TestEncounterBehindAgingStaysInRange(t *testing.T) {
	cfg := DefaultConfig()
	tab := NewTable(1, cfg)
	for i := 0; i < 50; i++ {
		tab.Encounter(2, float64(i)) // drive P(2) toward 1
	}
	tab.Age(1e6)
	tab.Encounter(2, 0.5e6) // far behind the last aging step
	if p := tab.P(2); p < 0 || p > 1 {
		t.Fatalf("P out of range after late encounter: %v", p)
	}
}
