// Package prophet implements the PROPHET routing protocol's delivery
// predictability metric (Lindgren, Doria, Schelén — "Probabilistic routing
// in intermittently connected networks"), which §III-C of the paper uses to
// estimate how likely a node can deliver photos to the command center.
//
// The metric follows the three heuristics the paper cites:
//
//  1. Encounter: P(a,b) = P_old + (1 − P_old)·P_init.
//  2. Aging:     P(a,b) = P_old·γ^k, k aging units since the last update.
//  3. Transitivity: P(a,c) = max(P_old, P(a,b)·P(b,c)·β).
package prophet

import (
	"errors"
	"fmt"
	"math"

	"photodtn/internal/model"
)

// Config holds the PROPHET constants. Table I of the paper uses
// P_init = 0.75, β = 0.25, γ = 0.98.
type Config struct {
	// PInit is the encounter reinforcement constant in (0, 1].
	PInit float64
	// Beta is the transitivity damping constant in [0, 1].
	Beta float64
	// Gamma is the per-aging-unit decay constant in (0, 1].
	Gamma float64
	// AgingUnit is the wall-clock length of one aging unit in seconds.
	AgingUnit float64
}

// DefaultConfig returns the Table I constants with a one-hour aging unit,
// which suits the multi-hundred-hour traces of the evaluation.
func DefaultConfig() Config {
	return Config{PInit: 0.75, Beta: 0.25, Gamma: 0.98, AgingUnit: 3600}
}

// ErrBadConfig reports invalid PROPHET constants.
var ErrBadConfig = errors.New("prophet: bad config")

// Validate checks the constants are in their legal ranges.
func (c Config) Validate() error {
	switch {
	case !(c.PInit > 0 && c.PInit <= 1):
		return fmt.Errorf("%w: PInit %v outside (0,1]", ErrBadConfig, c.PInit)
	case !(c.Beta >= 0 && c.Beta <= 1):
		return fmt.Errorf("%w: Beta %v outside [0,1]", ErrBadConfig, c.Beta)
	case !(c.Gamma > 0 && c.Gamma <= 1):
		return fmt.Errorf("%w: Gamma %v outside (0,1]", ErrBadConfig, c.Gamma)
	case !(c.AgingUnit > 0):
		return fmt.Errorf("%w: AgingUnit %v must be positive", ErrBadConfig, c.AgingUnit)
	}
	return nil
}

// Table is one node's delivery-predictability table: P(owner, x) for every
// destination x the node knows about. The zero value is not usable; call
// NewTable. Table is not safe for concurrent use.
type Table struct {
	cfg      Config
	owner    model.NodeID
	p        map[model.NodeID]float64
	lastAged float64
}

// NewTable returns an empty table for the owner node.
func NewTable(owner model.NodeID, cfg Config) *Table {
	return &Table{cfg: cfg, owner: owner, p: make(map[model.NodeID]float64)}
}

// Owner returns the node the table belongs to.
func (t *Table) Owner() model.NodeID { return t.owner }

// LastAged returns the timestamp of the table's last aging step (0 before
// the first). The difference now − LastAged() is the table's staleness,
// which observability samples at every contact.
func (t *Table) LastAged() float64 { return t.lastAged }

// Len returns the number of destinations with a live predictability entry.
func (t *Table) Len() int { return len(t.p) }

// P returns the delivery predictability from the owner to dst. Unknown
// destinations have probability 0; the owner reaches itself with
// probability 1.
func (t *Table) P(dst model.NodeID) float64 {
	if dst == t.owner {
		return 1
	}
	return t.p[dst]
}

// Age decays every entry according to the time elapsed since the last aging.
// It is idempotent for the same timestamp and tolerates time going backwards
// (no-op).
func (t *Table) Age(now float64) {
	if now <= t.lastAged {
		return
	}
	k := (now - t.lastAged) / t.cfg.AgingUnit
	t.lastAged = now
	decay := math.Pow(t.cfg.Gamma, k)
	for dst, v := range t.p {
		v *= decay
		if v < 1e-12 {
			delete(t.p, dst)
			continue
		}
		t.p[dst] = v
	}
}

// Encounter records a direct contact with peer at the given time, applying
// aging first and then the encounter reinforcement.
//
// Contacts can arrive timestamped before the table's last aging step (clock
// skew, out-of-order event delivery). Reinforcing the already-decayed value
// directly would make the final probability depend on which of the two
// events was processed first. Instead, the decay the late contact missed is
// undone, the reinforcement applied at the contact's own time, and the
// decay re-applied — so Age(t2); Encounter(peer, t1) leaves the same value
// as Encounter(peer, t1); Age(t2) for t1 < t2 (up to floating-point
// rounding).
func (t *Table) Encounter(peer model.NodeID, now float64) {
	if peer == t.owner {
		return
	}
	if now < t.lastAged {
		d := math.Pow(t.cfg.Gamma, (t.lastAged-now)/t.cfg.AgingUnit)
		pe := t.p[peer] / d
		if pe > 1 {
			pe = 1 // guard FP residue; probabilities never exceed 1
		}
		t.p[peer] = (pe + (1-pe)*t.cfg.PInit) * d
		return
	}
	t.Age(now)
	old := t.p[peer]
	t.p[peer] = old + (1-old)*t.cfg.PInit
}

// Transitive folds in the peer's table after an encounter: for every
// destination d the peer can reach, P(owner,d) is raised to at least
// P(owner,peer)·P(peer,d)·β.
func (t *Table) Transitive(peer model.NodeID, peerP map[model.NodeID]float64) {
	through := t.P(peer)
	if through == 0 {
		return
	}
	for dst, pd := range peerP {
		if dst == t.owner {
			continue
		}
		if v := through * pd * t.cfg.Beta; v > t.p[dst] {
			t.p[dst] = v
		}
	}
}

// Restore replaces the table's state with a previously captured Snapshot
// and aging timestamp — the crash-recovery path of a durable peer. Entries
// are copied; zero and negative probabilities are dropped (they would have
// been aged out).
func (t *Table) Restore(entries map[model.NodeID]float64, lastAged float64) {
	t.p = make(map[model.NodeID]float64, len(entries))
	for dst, v := range entries {
		if dst == t.owner || v <= 0 {
			continue
		}
		t.p[dst] = v
	}
	t.lastAged = lastAged
}

// Clone returns an independent copy of the table, including its aging
// timestamp (which Restore-from-Snapshot alone would not carry).
func (t *Table) Clone() *Table {
	c := &Table{cfg: t.cfg, owner: t.owner, p: make(map[model.NodeID]float64, len(t.p)), lastAged: t.lastAged}
	for dst, v := range t.p {
		c.p[dst] = v
	}
	return c
}

// Snapshot returns a copy of the table's entries, suitable for sending to a
// peer during a contact.
func (t *Table) Snapshot() map[model.NodeID]float64 {
	out := make(map[model.NodeID]float64, len(t.p))
	for dst, v := range t.p {
		out[dst] = v
	}
	return out
}

// DeliveryProb returns the predictability of reaching the command center,
// the p_i of §III-C. The command center itself reports 1.
func (t *Table) DeliveryProb(now float64) float64 {
	if t.owner.IsCommandCenter() {
		return 1
	}
	t.Age(now)
	return t.P(model.CommandCenter)
}

// Exchange performs the full PROPHET update for a contact between two nodes:
// both age, both reinforce the direct link, then both apply transitivity
// with the other's (post-reinforcement) table. This mirrors the beacon
// exchange of the protocol.
func Exchange(a, b *Table, now float64) {
	a.Encounter(b.owner, now)
	b.Encounter(a.owner, now)
	sa, sb := a.Snapshot(), b.Snapshot()
	a.Transitive(b.owner, sb)
	b.Transitive(a.owner, sa)
}
