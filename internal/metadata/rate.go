package metadata

import "photodtn/internal/model"

// RateEstimator learns a node's aggregate contact rate λ_a = Σ_b λ_ab online
// from its own contact history (§III-B). Each pairwise rate is the
// maximum-likelihood estimate count/elapsed under the exponential
// inter-contact assumption, so the aggregate reduces to total contacts over
// elapsed time.
type RateEstimator struct {
	started bool
	start   float64
	total   int
	perPeer map[model.NodeID]int
}

// NewRateEstimator returns an estimator with no history.
func NewRateEstimator() *RateEstimator {
	return &RateEstimator{perPeer: make(map[model.NodeID]int)}
}

// Observe records a contact with peer at the given time.
func (r *RateEstimator) Observe(peer model.NodeID, now float64) {
	if !r.started {
		r.started = true
		r.start = now
	}
	r.total++
	r.perPeer[peer]++
}

// Rate returns the aggregate rate λ_a in contacts/second as of now. With
// fewer than two observations or no elapsed time it returns 0 (unknown).
func (r *RateEstimator) Rate(now float64) float64 {
	if !r.started || r.total < 2 {
		return 0
	}
	elapsed := now - r.start
	if elapsed <= 0 {
		return 0
	}
	return float64(r.total) / elapsed
}

// PeerRate returns the learned pairwise rate λ_ab in contacts/second.
func (r *RateEstimator) PeerRate(peer model.NodeID, now float64) float64 {
	if !r.started {
		return 0
	}
	elapsed := now - r.start
	if elapsed <= 0 {
		return 0
	}
	return float64(r.perPeer[peer]) / elapsed
}

// Contacts returns the total number of observed contacts.
func (r *RateEstimator) Contacts() int { return r.total }

// Clone returns an independent copy of the estimator.
func (r *RateEstimator) Clone() *RateEstimator {
	c := &RateEstimator{
		started: r.started,
		start:   r.start,
		total:   r.total,
		perPeer: make(map[model.NodeID]int, len(r.perPeer)),
	}
	for peer, n := range r.perPeer {
		c.perPeer[peer] = n
	}
	return c
}

// RateSnapshot is a RateEstimator's serialisable state.
type RateSnapshot struct {
	// Started reports whether any contact has been observed.
	Started bool
	// Start is the first observation's timestamp.
	Start float64
	// PerPeer maps each peer to its observed contact count.
	PerPeer map[model.NodeID]int
}

// Snapshot captures the estimator's state for durable storage.
func (r *RateEstimator) Snapshot() RateSnapshot {
	s := RateSnapshot{Started: r.started, Start: r.start}
	if len(r.perPeer) > 0 {
		s.PerPeer = make(map[model.NodeID]int, len(r.perPeer))
		for peer, n := range r.perPeer {
			s.PerPeer[peer] = n
		}
	}
	return s
}

// Restore replaces the estimator's state with a previously captured
// snapshot — the crash-recovery path of a durable peer.
func (r *RateEstimator) Restore(s RateSnapshot) {
	r.started = s.Started
	r.start = s.Start
	r.total = 0
	r.perPeer = make(map[model.NodeID]int, len(s.PerPeer))
	for peer, n := range s.PerPeer {
		if n <= 0 {
			continue
		}
		r.perPeer[peer] = n
		r.total += n
	}
}
