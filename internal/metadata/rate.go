package metadata

import "photodtn/internal/model"

// RateEstimator learns a node's aggregate contact rate λ_a = Σ_b λ_ab online
// from its own contact history (§III-B). Each pairwise rate is the
// maximum-likelihood estimate count/elapsed under the exponential
// inter-contact assumption, so the aggregate reduces to total contacts over
// elapsed time.
type RateEstimator struct {
	started bool
	start   float64
	total   int
	perPeer map[model.NodeID]int
}

// NewRateEstimator returns an estimator with no history.
func NewRateEstimator() *RateEstimator {
	return &RateEstimator{perPeer: make(map[model.NodeID]int)}
}

// Observe records a contact with peer at the given time.
func (r *RateEstimator) Observe(peer model.NodeID, now float64) {
	if !r.started {
		r.started = true
		r.start = now
	}
	r.total++
	r.perPeer[peer]++
}

// Rate returns the aggregate rate λ_a in contacts/second as of now. With
// fewer than two observations or no elapsed time it returns 0 (unknown).
func (r *RateEstimator) Rate(now float64) float64 {
	if !r.started || r.total < 2 {
		return 0
	}
	elapsed := now - r.start
	if elapsed <= 0 {
		return 0
	}
	return float64(r.total) / elapsed
}

// PeerRate returns the learned pairwise rate λ_ab in contacts/second.
func (r *RateEstimator) PeerRate(peer model.NodeID, now float64) float64 {
	if !r.started {
		return 0
	}
	elapsed := now - r.start
	if elapsed <= 0 {
		return 0
	}
	return float64(r.perPeer[peer]) / elapsed
}

// Contacts returns the total number of observed contacts.
func (r *RateEstimator) Contacts() int { return r.total }
