// Package metadata implements the metadata management scheme of §III-B.
//
// Nodes exchange photo metadata on every contact and cache what they learn
// about other nodes. Because DTN connectivity is too poor for traditional
// cache validation, an entry for node a is instead considered stale once the
// probability that a has met someone (and thus changed its photos) since the
// snapshot exceeds a threshold:
//
//	P{T_a < t} = 1 − e^(−λ_a·t) > P_thld,
//
// where λ_a is a's aggregate contact rate learned from history and t the
// time since the snapshot was taken (eq. 1 of the paper).
//
// The command center's metadata is special in two ways: it never goes stale
// (the command center never drops photos), and sharing it acts as a delivery
// acknowledgement that lets nodes purge already-delivered photos from
// consideration.
package metadata

import (
	"math"
	"sort"

	"photodtn/internal/model"
)

// DefaultPthld is the validity threshold P_thld from Table I.
const DefaultPthld = 0.8

// Entry is one cached metadata snapshot: what photos a node held, its
// learned contact rate, and when the snapshot was taken at the origin.
type Entry struct {
	// Node is the origin node the snapshot describes.
	Node model.NodeID
	// Photos is the origin's photo collection at snapshot time.
	Photos model.PhotoList
	// Lambda is the origin's aggregate contact rate λ_a in contacts/second,
	// as learned and advertised by the origin itself.
	Lambda float64
	// P is the origin's delivery probability to the command center (its
	// PROPHET p_i), as advertised at snapshot time. Expected coverage uses
	// it to weigh the origin's photos.
	P float64
	// Timestamp is when the snapshot was taken, in seconds of global
	// simulation/wall time.
	Timestamp float64
}

// StaleProb returns P{T_a < t}: the probability the origin node has met
// another node (and may have changed its photos) by time now.
//
// Clock skew (or out-of-order event processing) can put a snapshot's
// Timestamp in the observer's future. Treating that negative elapsed time
// as zero would make the entry permanently fresh — it would never expire
// until local time caught up past the skewed stamp. Staleness is a function
// of how far apart the two clocks' views are, so the magnitude |t| is used:
// an entry stamped far in the future is exactly as untrustworthy as one
// stamped equally far in the past.
func (e Entry) StaleProb(now float64) float64 {
	t := math.Abs(now - e.Timestamp)
	if t == 0 || e.Lambda <= 0 {
		return 0
	}
	return 1 - math.Exp(-e.Lambda*t)
}

// ValidityHorizon returns how long a snapshot from a node with rate lambda
// stays valid under threshold pthld: the t solving 1 − e^(−λt) = P_thld.
// It returns +Inf for a zero rate.
func ValidityHorizon(lambda, pthld float64) float64 {
	if lambda <= 0 {
		return math.Inf(1)
	}
	if pthld >= 1 {
		return math.Inf(1)
	}
	if pthld <= 0 {
		return 0
	}
	return -math.Log(1-pthld) / lambda
}

// Cache is one node's knowledge about every other node's photos. The zero
// value is not usable; call NewCache. Cache is not safe for concurrent use.
type Cache struct {
	owner   model.NodeID
	pthld   float64
	entries map[model.NodeID]Entry

	// Optional caps (0 = unlimited), enforced by eviction at Put time.
	maxEntries int
	maxBytes   int64
	bytes      int64
}

// entryOverhead approximates one entry's fixed cost next to its photo
// list: node + λ + p + timestamp, as encoded on the wire.
const entryOverhead = 4 + 8 + 8 + 8

// entrySize is an entry's accounted cost in bytes.
func entrySize(e Entry) int64 {
	return entryOverhead + int64(len(e.Photos))*model.PhotoWireSize
}

// NewCache returns an empty cache with the given validity threshold; a
// non-positive threshold falls back to DefaultPthld.
func NewCache(owner model.NodeID, pthld float64) *Cache {
	if pthld <= 0 {
		pthld = DefaultPthld
	}
	return &Cache{owner: owner, pthld: pthld, entries: make(map[model.NodeID]Entry)}
}

// Owner returns the node the cache belongs to.
func (c *Cache) Owner() model.NodeID { return c.owner }

// Pthld returns the validity threshold in use.
func (c *Cache) Pthld() float64 { return c.pthld }

// Len returns the number of cached entries.
func (c *Cache) Len() int { return len(c.entries) }

// Bytes returns the accounted size of the cache: a fixed per-entry
// overhead plus the encoded size of every listed photo.
func (c *Cache) Bytes() int64 { return c.bytes }

// SetLimits bounds the cache to at most maxEntries entries and maxBytes of
// accounted entry size (zero or negative disables a bound). When a Put
// pushes past a bound, the entries with the oldest snapshot timestamps are
// evicted first (ties broken toward the higher node ID) — the entries
// closest to going stale anyway. The command-center entry is never
// evicted: it is the delivery-acknowledgement ledger, and losing it would
// resurrect already-delivered photos.
func (c *Cache) SetLimits(maxEntries int, maxBytes int64) {
	c.maxEntries, c.maxBytes = maxEntries, maxBytes
	c.evict()
}

// setEntry stores an entry and keeps the byte account in balance.
func (c *Cache) setEntry(e Entry) {
	if old, ok := c.entries[e.Node]; ok {
		c.bytes -= entrySize(old)
	}
	c.bytes += entrySize(e)
	c.entries[e.Node] = e
}

// delEntry removes an entry and keeps the byte account in balance.
func (c *Cache) delEntry(node model.NodeID) {
	if old, ok := c.entries[node]; ok {
		c.bytes -= entrySize(old)
		delete(c.entries, node)
	}
}

// evict enforces the configured caps by dropping oldest-snapshot entries
// (never the command center's).
func (c *Cache) evict() {
	over := func() bool {
		return (c.maxEntries > 0 && len(c.entries) > c.maxEntries) ||
			(c.maxBytes > 0 && c.bytes > c.maxBytes)
	}
	for over() {
		victim := model.NodeID(0)
		found := false
		var oldest float64
		for node, e := range c.entries {
			if node.IsCommandCenter() {
				continue
			}
			if !found || e.Timestamp < oldest || (e.Timestamp == oldest && node > victim) {
				victim, oldest, found = node, e.Timestamp, true
			}
		}
		if !found {
			return // only the command center left; nothing evictable
		}
		c.delEntry(victim)
	}
}

// Put stores a snapshot, keeping the newer of the existing and incoming
// entries. Command-center entries are merged by union (the command center
// never drops photos, so any two snapshots of it are consistent).
func (c *Cache) Put(e Entry) {
	if e.Node == c.owner {
		return // a node does not cache itself
	}
	old, ok := c.entries[e.Node]
	switch {
	case !ok:
		c.setEntry(cloneEntry(e))
	case e.Node.IsCommandCenter():
		c.setEntry(mergeCC(old, e))
	case e.Timestamp > old.Timestamp:
		c.setEntry(cloneEntry(e))
	default:
		return
	}
	c.evict()
}

func cloneEntry(e Entry) Entry {
	e.Photos = e.Photos.Clone()
	return e
}

// mergeCC unions two command-center snapshots.
func mergeCC(a, b Entry) Entry {
	out := Entry{
		Node:      model.CommandCenter,
		Timestamp: math.Max(a.Timestamp, b.Timestamp),
	}
	seen := make(map[model.PhotoID]bool, len(a.Photos)+len(b.Photos))
	for _, l := range []model.PhotoList{a.Photos, b.Photos} {
		for _, p := range l {
			if !seen[p.ID] {
				seen[p.ID] = true
				out.Photos = append(out.Photos, p)
			}
		}
	}
	return out
}

// Clone returns a deep copy of the cache: same owner, threshold, limits,
// and entries (photo lists copied), sharing no mutable state with the
// original.
func (c *Cache) Clone() *Cache {
	out := &Cache{
		owner: c.owner, pthld: c.pthld,
		maxEntries: c.maxEntries, maxBytes: c.maxBytes, bytes: c.bytes,
		entries: make(map[model.NodeID]Entry, len(c.entries)),
	}
	for node, e := range c.entries {
		out.entries[node] = cloneEntry(e)
	}
	return out
}

// Get returns the cached entry for a node, valid or not.
func (c *Cache) Get(node model.NodeID) (Entry, bool) {
	e, ok := c.entries[node]
	return e, ok
}

// Remove drops the entry for a node.
func (c *Cache) Remove(node model.NodeID) { c.delEntry(node) }

// IsValid applies eq. (1): an entry is valid while its staleness probability
// is at most P_thld. Command-center entries are always valid.
func (c *Cache) IsValid(e Entry, now float64) bool {
	if e.Node.IsCommandCenter() {
		return true
	}
	return e.StaleProb(now) <= c.pthld
}

// DropInvalid removes every stale entry and returns how many were dropped.
func (c *Cache) DropInvalid(now float64) int {
	dropped := 0
	for node, e := range c.entries {
		if !c.IsValid(e, now) {
			c.delEntry(node)
			dropped++
		}
	}
	return dropped
}

// Entries returns every cached entry — valid or stale — sorted by node ID.
// It is the snapshot surface for durable peers: a restart must restore the
// cache exactly, and what is stale is for IsValid to decide at use time.
func (c *Cache) Entries() []Entry {
	out := make([]Entry, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// ValidEntries returns the currently valid entries sorted by node ID
// (deterministic order for the selection algorithm).
func (c *Cache) ValidEntries(now float64) []Entry {
	out := make([]Entry, 0, len(c.entries))
	for _, e := range c.entries {
		if c.IsValid(e, now) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// MergeFrom gossips another cache into this one: every entry of other is
// Put into c. This propagates command-center acknowledgements (and
// third-party snapshots) through the DTN.
func (c *Cache) MergeFrom(other *Cache) {
	if other == nil {
		return
	}
	for _, e := range other.entries {
		c.Put(e)
	}
}

// Delivered returns the set of photo IDs known to have reached the command
// center — the acknowledgement view of §III-B.
func (c *Cache) Delivered() map[model.PhotoID]bool {
	e, ok := c.entries[model.CommandCenter]
	if !ok {
		return nil
	}
	out := make(map[model.PhotoID]bool, len(e.Photos))
	for _, p := range e.Photos {
		out[p.ID] = true
	}
	return out
}
