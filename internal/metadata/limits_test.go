package metadata

import (
	"testing"

	"photodtn/internal/model"
)

func entryOf(n model.NodeID, ts float64, photos ...model.Photo) Entry {
	return Entry{Node: n, Lambda: 0.01, P: 0.5, Timestamp: ts, Photos: photos}
}

func TestBytesAccounting(t *testing.T) {
	c := NewCache(1, 0)
	if c.Bytes() != 0 {
		t.Fatalf("empty cache accounts %d bytes", c.Bytes())
	}
	c.Put(entryOf(2, 10, photoOf(2, 0), photoOf(2, 1)))
	want := int64(entryOverhead) + 2*model.PhotoWireSize
	if c.Bytes() != want {
		t.Fatalf("Bytes() = %d, want %d", c.Bytes(), want)
	}
	// A newer snapshot replaces, not adds.
	c.Put(entryOf(2, 20, photoOf(2, 0)))
	want = int64(entryOverhead) + model.PhotoWireSize
	if c.Bytes() != want {
		t.Fatalf("after replace Bytes() = %d, want %d", c.Bytes(), want)
	}
	c.Remove(2)
	if c.Bytes() != 0 {
		t.Fatalf("after remove Bytes() = %d, want 0", c.Bytes())
	}
}

func TestEntryCapEvictsOldest(t *testing.T) {
	c := NewCache(1, 0)
	c.SetLimits(2, 0)
	c.Put(entryOf(2, 30, photoOf(2, 0)))
	c.Put(entryOf(3, 10, photoOf(3, 0))) // oldest snapshot
	c.Put(entryOf(4, 20, photoOf(4, 0)))
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, cap 2", c.Len())
	}
	if _, ok := c.Get(3); ok {
		t.Fatal("oldest entry survived eviction")
	}
	for _, n := range []model.NodeID{2, 4} {
		if _, ok := c.Get(n); !ok {
			t.Fatalf("entry %v evicted, want oldest-first", n)
		}
	}
}

func TestEntryCapTieBreaksHigherNode(t *testing.T) {
	c := NewCache(1, 0)
	c.SetLimits(2, 0)
	c.Put(entryOf(2, 10, photoOf(2, 0)))
	c.Put(entryOf(5, 10, photoOf(5, 0)))
	c.Put(entryOf(3, 10, photoOf(3, 0)))
	// All stamped identically: the higher node ID goes first each round.
	if _, ok := c.Get(5); ok {
		t.Fatal("tie-break kept the higher node ID")
	}
	if _, ok := c.Get(2); !ok {
		t.Fatal("tie-break evicted the lower node ID")
	}
}

func TestByteCapEvicts(t *testing.T) {
	c := NewCache(1, 0)
	perEntry := int64(entryOverhead) + model.PhotoWireSize
	c.SetLimits(0, 2*perEntry)
	c.Put(entryOf(2, 10, photoOf(2, 0)))
	c.Put(entryOf(3, 20, photoOf(3, 0)))
	c.Put(entryOf(4, 30, photoOf(4, 0)))
	if c.Len() != 2 || c.Bytes() > 2*perEntry {
		t.Fatalf("cache holds %d entries / %d bytes, cap %d bytes", c.Len(), c.Bytes(), 2*perEntry)
	}
	if _, ok := c.Get(2); ok {
		t.Fatal("oldest entry survived the byte cap")
	}
}

func TestSetLimitsEvictsRetroactively(t *testing.T) {
	c := NewCache(1, 0)
	for n := model.NodeID(2); n < 7; n++ {
		c.Put(entryOf(n, float64(n), photoOf(n, 0)))
	}
	c.SetLimits(3, 0)
	if c.Len() != 3 {
		t.Fatalf("SetLimits left %d entries, cap 3", c.Len())
	}
}

func TestCommandCenterNeverEvicted(t *testing.T) {
	c := NewCache(1, 0)
	c.SetLimits(2, 0)
	// The CC entry is the oldest by far; eviction must pass it over.
	c.Put(entryOf(model.CommandCenter, 1, photoOf(9, 0)))
	c.Put(entryOf(2, 50, photoOf(2, 0)))
	c.Put(entryOf(3, 60, photoOf(3, 0)))
	c.Put(entryOf(4, 70, photoOf(4, 0)))
	if _, ok := c.Get(model.CommandCenter); !ok {
		t.Fatal("command-center entry evicted: the delivery ledger is gone")
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, cap 2", c.Len())
	}
	// Degenerate cap: with only the CC left, eviction stops rather than
	// loops.
	c.SetLimits(1, 1)
	if _, ok := c.Get(model.CommandCenter); !ok {
		t.Fatal("command-center entry evicted under a degenerate cap")
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries after degenerate cap", c.Len())
	}
}

func TestClonePreservesLimits(t *testing.T) {
	c := NewCache(1, 0)
	c.SetLimits(2, 1<<20)
	c.Put(entryOf(2, 10, photoOf(2, 0)))
	cl := c.Clone()
	if cl.Bytes() != c.Bytes() {
		t.Fatalf("clone accounts %d bytes, original %d", cl.Bytes(), c.Bytes())
	}
	// The clone enforces the same caps independently.
	cl.Put(entryOf(3, 20, photoOf(3, 0)))
	cl.Put(entryOf(4, 30, photoOf(4, 0)))
	if cl.Len() != 2 {
		t.Fatalf("clone holds %d entries, cap 2", cl.Len())
	}
	if c.Len() != 1 {
		t.Fatalf("clone's puts leaked into the original (%d entries)", c.Len())
	}
}

// TestPoisonedFarFutureEntryExpires pins the monotone-age behaviour the
// guard's skew gate backs up: even if a far-future snapshot got in (e.g. a
// pre-guard peer), |now − ts| staleness makes it invalid immediately rather
// than permanently fresh.
func TestPoisonedFarFutureEntryExpires(t *testing.T) {
	c := NewCache(1, 0)
	c.Put(entryOf(2, 1e9, photoOf(2, 0)))
	if c.IsValid(mustGet(t, c, 2), 1000) {
		t.Fatal("far-future snapshot considered valid")
	}
	if dropped := c.DropInvalid(1000); dropped != 1 {
		t.Fatalf("DropInvalid dropped %d, want 1", dropped)
	}
	// Far-past entries behave symmetrically.
	c.Put(entryOf(3, -1e9, photoOf(3, 0)))
	if c.IsValid(mustGet(t, c, 3), 1000) {
		t.Fatal("far-past snapshot considered valid")
	}
}

// TestConflictingDuplicateSnapshots pins last-writer-wins on duplicate IDs
// with conflicting footprints: the newer snapshot's view of a photo
// replaces the older one's entirely — the cache never merges two
// conflicting footprints for a non-command-center node.
func TestConflictingDuplicateSnapshots(t *testing.T) {
	c := NewCache(1, 0)
	honest := photoOf(2, 0)
	conflicting := honest
	conflicting.Range = 999
	conflicting.Size = 1 << 30

	c.Put(entryOf(2, 20, honest))
	c.Put(entryOf(2, 10, conflicting)) // older conflicting snapshot: ignored
	e := mustGet(t, c, 2)
	if len(e.Photos) != 1 || e.Photos[0].Range != honest.Range || e.Photos[0].Size != honest.Size {
		t.Fatalf("older conflicting snapshot overwrote the newer one: %+v", e.Photos)
	}

	c.Put(entryOf(2, 30, conflicting)) // newer snapshot wins wholesale
	e = mustGet(t, c, 2)
	if len(e.Photos) != 1 || e.Photos[0].Range != 999 {
		t.Fatalf("newer snapshot did not replace: %+v", e.Photos)
	}
	if c.Bytes() != int64(entryOverhead)+model.PhotoWireSize {
		t.Fatalf("byte account drifted to %d across conflicting puts", c.Bytes())
	}
}

func mustGet(t *testing.T, c *Cache, n model.NodeID) Entry {
	t.Helper()
	e, ok := c.Get(n)
	if !ok {
		t.Fatalf("entry %v missing", n)
	}
	return e
}
