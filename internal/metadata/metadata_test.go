package metadata

import (
	"math"
	"testing"
	"testing/quick"

	"photodtn/internal/model"
)

func photoOf(owner model.NodeID, seq uint32) model.Photo {
	return model.Photo{
		ID:    model.MakePhotoID(owner, seq),
		Owner: owner,
		Range: 100, FOV: 1, Size: 4 << 20,
	}
}

func TestEntryStaleProb(t *testing.T) {
	e := Entry{Node: 2, Lambda: 0.01, Timestamp: 100}
	if got := e.StaleProb(100); got != 0 {
		t.Fatalf("staleness at snapshot time = %v", got)
	}
	want := 1 - math.Exp(-0.01*50)
	if got := e.StaleProb(150); math.Abs(got-want) > 1e-12 {
		t.Fatalf("staleness = %v, want %v", got, want)
	}
	// A snapshot stamped in the observer's future (clock skew) is as stale
	// as one stamped equally far in the past — not permanently fresh.
	if got := e.StaleProb(50); math.Abs(got-want) > 1e-12 {
		t.Fatalf("skewed staleness = %v, want %v", got, want)
	}
	// Zero rate: never stale.
	e.Lambda = 0
	if got := e.StaleProb(1e12); got != 0 {
		t.Fatalf("zero-rate staleness = %v", got)
	}
}

func TestStaleProbMonotone(t *testing.T) {
	f := func(lambda, t1, t2 float64) bool {
		lambda = math.Abs(lambda)
		t1, t2 = math.Abs(t1), math.Abs(t2)
		if math.IsNaN(lambda) || math.IsInf(lambda, 0) || math.IsNaN(t1) || math.IsNaN(t2) {
			return true
		}
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		e := Entry{Lambda: lambda}
		p1, p2 := e.StaleProb(t1), e.StaleProb(t2)
		return p1 >= 0 && p2 <= 1 && p1 <= p2+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidityHorizon(t *testing.T) {
	// At the horizon, staleness equals the threshold.
	h := ValidityHorizon(0.01, 0.8)
	e := Entry{Lambda: 0.01}
	if got := e.StaleProb(h); math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("staleness at horizon = %v, want 0.8", got)
	}
	if !math.IsInf(ValidityHorizon(0, 0.8), 1) {
		t.Fatal("zero rate should have infinite horizon")
	}
	if !math.IsInf(ValidityHorizon(0.01, 1), 1) {
		t.Fatal("threshold 1 should have infinite horizon")
	}
	if ValidityHorizon(0.01, 0) != 0 {
		t.Fatal("threshold 0 should have zero horizon")
	}
}

func TestCachePutGet(t *testing.T) {
	c := NewCache(1, 0.8)
	e := Entry{Node: 2, Photos: model.PhotoList{photoOf(2, 0)}, Lambda: 0.01, Timestamp: 10}
	c.Put(e)
	got, ok := c.Get(2)
	if !ok || got.Node != 2 || len(got.Photos) != 1 {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if _, ok := c.Get(3); ok {
		t.Fatal("unexpected entry for node 3")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCachePutIgnoresSelf(t *testing.T) {
	c := NewCache(1, 0.8)
	c.Put(Entry{Node: 1, Timestamp: 10})
	if c.Len() != 0 {
		t.Fatal("cache stored its own node")
	}
}

func TestCachePutKeepsNewer(t *testing.T) {
	c := NewCache(1, 0.8)
	c.Put(Entry{Node: 2, Timestamp: 10, Photos: model.PhotoList{photoOf(2, 0)}})
	// Older snapshot must not overwrite.
	c.Put(Entry{Node: 2, Timestamp: 5, Photos: model.PhotoList{photoOf(2, 1), photoOf(2, 2)}})
	e, _ := c.Get(2)
	if e.Timestamp != 10 || len(e.Photos) != 1 {
		t.Fatalf("older snapshot overwrote newer: %+v", e)
	}
	// Newer snapshot replaces.
	c.Put(Entry{Node: 2, Timestamp: 20, Photos: nil})
	e, _ = c.Get(2)
	if e.Timestamp != 20 || len(e.Photos) != 0 {
		t.Fatalf("newer snapshot not taken: %+v", e)
	}
}

func TestCachePutClones(t *testing.T) {
	c := NewCache(1, 0.8)
	photos := model.PhotoList{photoOf(2, 0)}
	c.Put(Entry{Node: 2, Timestamp: 10, Photos: photos})
	photos[0].Size = 1
	e, _ := c.Get(2)
	if e.Photos[0].Size == 1 {
		t.Fatal("cache aliases caller's slice")
	}
}

func TestCommandCenterUnion(t *testing.T) {
	c := NewCache(1, 0.8)
	c.Put(Entry{Node: model.CommandCenter, Timestamp: 10, Photos: model.PhotoList{photoOf(2, 0)}})
	c.Put(Entry{Node: model.CommandCenter, Timestamp: 5, Photos: model.PhotoList{photoOf(3, 0), photoOf(2, 0)}})
	e, _ := c.Get(model.CommandCenter)
	if len(e.Photos) != 2 {
		t.Fatalf("CC union size = %d, want 2", len(e.Photos))
	}
	if e.Timestamp != 10 {
		t.Fatalf("CC timestamp = %v, want max", e.Timestamp)
	}
	del := c.Delivered()
	if !del[model.MakePhotoID(2, 0)] || !del[model.MakePhotoID(3, 0)] {
		t.Fatalf("Delivered = %v", del)
	}
}

func TestDeliveredEmpty(t *testing.T) {
	c := NewCache(1, 0.8)
	if c.Delivered() != nil {
		t.Fatal("expected nil delivered set")
	}
}

func TestValidity(t *testing.T) {
	c := NewCache(1, 0.8)
	lambda := 0.001
	c.Put(Entry{Node: 2, Lambda: lambda, Timestamp: 0})
	horizon := ValidityHorizon(lambda, 0.8)

	if entries := c.ValidEntries(horizon * 0.9); len(entries) != 1 {
		t.Fatalf("entry should be valid before horizon, got %d", len(entries))
	}
	if entries := c.ValidEntries(horizon * 1.1); len(entries) != 0 {
		t.Fatalf("entry should be stale after horizon, got %d", len(entries))
	}
	// DropInvalid removes it permanently.
	if dropped := c.DropInvalid(horizon * 1.1); dropped != 1 {
		t.Fatalf("dropped = %d", dropped)
	}
	if c.Len() != 0 {
		t.Fatal("entry not removed")
	}
}

func TestCommandCenterAlwaysValid(t *testing.T) {
	c := NewCache(1, 0.8)
	c.Put(Entry{Node: model.CommandCenter, Lambda: 100, Timestamp: 0})
	if entries := c.ValidEntries(1e12); len(entries) != 1 {
		t.Fatal("CC entry must never go stale")
	}
	if dropped := c.DropInvalid(1e12); dropped != 0 {
		t.Fatal("CC entry must not be dropped")
	}
}

func TestValidEntriesSorted(t *testing.T) {
	c := NewCache(1, 0.8)
	for _, n := range []model.NodeID{5, 3, 9, 2} {
		c.Put(Entry{Node: n, Timestamp: 0})
	}
	entries := c.ValidEntries(10)
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Node >= entries[i].Node {
			t.Fatalf("entries not sorted: %v", entries)
		}
	}
}

func TestMergeFrom(t *testing.T) {
	a := NewCache(1, 0.8)
	b := NewCache(2, 0.8)
	b.Put(Entry{Node: 3, Timestamp: 10, Photos: model.PhotoList{photoOf(3, 0)}})
	b.Put(Entry{Node: 1, Timestamp: 10}) // a's own node: must be skipped
	b.Put(Entry{Node: model.CommandCenter, Timestamp: 4, Photos: model.PhotoList{photoOf(9, 0)}})
	a.Put(Entry{Node: model.CommandCenter, Timestamp: 8, Photos: model.PhotoList{photoOf(8, 0)}})

	a.MergeFrom(b)
	if _, ok := a.Get(3); !ok {
		t.Fatal("third-party entry not gossiped")
	}
	if _, ok := a.Get(1); ok {
		t.Fatal("cache stored its own node via merge")
	}
	if del := a.Delivered(); !del[model.MakePhotoID(9, 0)] || !del[model.MakePhotoID(8, 0)] {
		t.Fatalf("CC ACKs not unioned: %v", del)
	}
	a.MergeFrom(nil) // must not panic
}

func TestCacheRemove(t *testing.T) {
	c := NewCache(1, 0.8)
	c.Put(Entry{Node: 2, Timestamp: 0})
	c.Remove(2)
	if c.Len() != 0 {
		t.Fatal("Remove failed")
	}
}

func TestNewCacheDefaults(t *testing.T) {
	c := NewCache(4, 0)
	if c.Pthld() != DefaultPthld {
		t.Fatalf("Pthld = %v", c.Pthld())
	}
	if c.Owner() != 4 {
		t.Fatalf("Owner = %v", c.Owner())
	}
}

func TestRateEstimator(t *testing.T) {
	r := NewRateEstimator()
	if r.Rate(100) != 0 {
		t.Fatal("empty estimator should report 0")
	}
	r.Observe(2, 0)
	if r.Rate(100) != 0 {
		t.Fatal("single observation should report 0 (unknown)")
	}
	r.Observe(3, 50)
	r.Observe(2, 100)
	if got := r.Rate(100); math.Abs(got-3.0/100) > 1e-12 {
		t.Fatalf("Rate = %v, want 0.03", got)
	}
	if got := r.PeerRate(2, 100); math.Abs(got-2.0/100) > 1e-12 {
		t.Fatalf("PeerRate = %v, want 0.02", got)
	}
	if r.Contacts() != 3 {
		t.Fatalf("Contacts = %d", r.Contacts())
	}
	// Aggregate equals sum of peer rates.
	sum := r.PeerRate(2, 100) + r.PeerRate(3, 100)
	if math.Abs(sum-r.Rate(100)) > 1e-12 {
		t.Fatalf("Σλ_ab = %v != λ_a = %v", sum, r.Rate(100))
	}
}

func TestRateEstimatorZeroElapsed(t *testing.T) {
	r := NewRateEstimator()
	r.Observe(2, 10)
	r.Observe(3, 10)
	if r.Rate(10) != 0 || r.PeerRate(2, 10) != 0 {
		t.Fatal("zero elapsed time should report 0")
	}
	if r.PeerRate(2, 5) != 0 {
		t.Fatal("time before start should report 0")
	}
}

// TestSkewedClockEntryExpires is the regression for the clock-skew bug: a
// cache entry whose snapshot timestamp lies in the local future (reachable
// under the fault model's per-node clock skew) must still expire once the
// skew exceeds the validity horizon — the old code treated negative elapsed
// time as "fresh forever".
func TestSkewedClockEntryExpires(t *testing.T) {
	c := NewCache(1, 0.8)
	horizon := ValidityHorizon(0.01, 0.8)
	future := Entry{
		Node: 2, Photos: model.PhotoList{photoOf(2, 0)},
		Lambda: 0.01, Timestamp: 1000 + 2*horizon, // stamped well ahead of now
	}
	c.Put(future)
	if c.IsValid(future, 1000) {
		t.Fatal("entry skewed past the validity horizon must be stale")
	}
	if dropped := c.DropInvalid(1000); dropped != 1 {
		t.Fatalf("DropInvalid dropped %d, want 1", dropped)
	}
	// A mild skew inside the horizon stays valid, mirroring the past case.
	mild := Entry{Node: 3, Lambda: 0.01, Timestamp: 1000 + horizon/2}
	c.Put(mild)
	if !c.IsValid(mild, 1000) {
		t.Fatal("entry skewed within the horizon must stay valid")
	}
}
