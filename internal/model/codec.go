package model

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// photoWireSize is the fixed encoded size of a Photo: 8 (id) + 4 (owner) +
// 8*6 (taken_at, x, y, range, fov, orientation) + 8 (size) + 8 (quality) +
// 8*8 (hist).
const photoWireSize = 8 + 4 + 6*8 + 8 + 8 + HistogramBins*8

// PhotoWireSize is the fixed encoded size of a Photo, exported for callers
// that budget memory in encoded-photo units (the metadata cache's byte cap).
const PhotoWireSize = photoWireSize

// ErrShortBuffer is returned when a decode input is truncated.
var ErrShortBuffer = errors.New("model: short buffer")

// AppendBinary appends the fixed-size binary encoding of p to dst and
// returns the extended slice. The encoding is little-endian and
// platform-independent.
func (p Photo) AppendBinary(dst []byte) []byte {
	var buf [photoWireSize]byte
	b := buf[:]
	binary.LittleEndian.PutUint64(b[0:], uint64(p.ID))
	binary.LittleEndian.PutUint32(b[8:], uint32(p.Owner))
	putF := func(off int, v float64) {
		binary.LittleEndian.PutUint64(b[off:], math.Float64bits(v))
	}
	putF(12, p.TakenAt)
	putF(20, p.Location.X)
	putF(28, p.Location.Y)
	putF(36, p.Range)
	putF(44, p.FOV)
	putF(52, p.Orientation)
	binary.LittleEndian.PutUint64(b[60:], uint64(p.Size))
	putF(68, p.Quality)
	for i, h := range p.Hist {
		putF(76+8*i, h)
	}
	return append(dst, b...)
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (p Photo) MarshalBinary() ([]byte, error) {
	return p.AppendBinary(nil), nil
}

// DecodePhoto decodes one photo from the front of b, returning the photo and
// the remaining bytes.
func DecodePhoto(b []byte) (Photo, []byte, error) {
	if len(b) < photoWireSize {
		return Photo{}, b, fmt.Errorf("%w: need %d bytes, have %d", ErrShortBuffer, photoWireSize, len(b))
	}
	getF := func(off int) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
	}
	p := Photo{
		ID:          PhotoID(binary.LittleEndian.Uint64(b[0:])),
		Owner:       NodeID(binary.LittleEndian.Uint32(b[8:])),
		TakenAt:     getF(12),
		Range:       getF(36),
		FOV:         getF(44),
		Orientation: getF(52),
		Size:        int64(binary.LittleEndian.Uint64(b[60:])),
		Quality:     getF(68),
	}
	p.Location.X = getF(20)
	p.Location.Y = getF(28)
	for i := range p.Hist {
		p.Hist[i] = getF(76 + 8*i)
	}
	return p, b[photoWireSize:], nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (p *Photo) UnmarshalBinary(data []byte) error {
	dec, rest, err := DecodePhoto(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("model: %d trailing bytes after photo", len(rest))
	}
	*p = dec
	return nil
}

// AppendBinary appends the binary encoding of the list (a count prefix then
// each photo) to dst.
func (l PhotoList) AppendBinary(dst []byte) []byte {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(l)))
	dst = append(dst, n[:]...)
	for _, p := range l {
		dst = p.AppendBinary(dst)
	}
	return dst
}

// DecodePhotoList decodes a photo list from the front of b, returning the
// list and the remaining bytes.
func DecodePhotoList(b []byte) (PhotoList, []byte, error) {
	if len(b) < 4 {
		return nil, b, fmt.Errorf("%w: missing list header", ErrShortBuffer)
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if uint64(n)*photoWireSize > uint64(len(b)) {
		return nil, b, fmt.Errorf("%w: list claims %d photos", ErrShortBuffer, n)
	}
	out := make(PhotoList, 0, n)
	for i := uint32(0); i < n; i++ {
		var (
			p   Photo
			err error
		)
		p, b, err = DecodePhoto(b)
		if err != nil {
			return nil, b, fmt.Errorf("photo %d: %w", i, err)
		}
		out = append(out, p)
	}
	return out, b, nil
}
