package model

import (
	"encoding/json"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"photodtn/internal/geo"
)

func samplePhoto() Photo {
	return Photo{
		ID:          MakePhotoID(3, 7),
		Owner:       3,
		TakenAt:     1234.5,
		Location:    geo.Vec{X: 100, Y: 200},
		Range:       150,
		FOV:         geo.Radians(45),
		Orientation: geo.Radians(90),
		Size:        4 << 20,
		Hist:        Histogram{0.1, 0.2, 0.3, 0.1, 0.1, 0.1, 0.05, 0.05},
	}
}

func TestNodeID(t *testing.T) {
	if !CommandCenter.IsCommandCenter() {
		t.Fatal("node 0 must be the command center")
	}
	if NodeID(5).IsCommandCenter() {
		t.Fatal("node 5 is not the command center")
	}
	if got := CommandCenter.String(); got != "n0(CC)" {
		t.Fatalf("String = %q", got)
	}
	if got := NodeID(5).String(); got != "n5" {
		t.Fatalf("String = %q", got)
	}
}

func TestPhotoIDRoundTrip(t *testing.T) {
	tests := []struct {
		owner NodeID
		seq   uint32
	}{
		{0, 0},
		{1, 1},
		{97, 42},
		{1 << 20, math.MaxUint32},
	}
	for _, tt := range tests {
		id := MakePhotoID(tt.owner, tt.seq)
		if id.Owner() != tt.owner || id.Seq() != tt.seq {
			t.Errorf("MakePhotoID(%v, %v) round trip = (%v, %v)", tt.owner, tt.seq, id.Owner(), id.Seq())
		}
	}
}

func TestPhotoIDUnique(t *testing.T) {
	seen := make(map[PhotoID]bool)
	for owner := NodeID(0); owner < 20; owner++ {
		for seq := uint32(0); seq < 20; seq++ {
			id := MakePhotoID(owner, seq)
			if seen[id] {
				t.Fatalf("duplicate id %v", id)
			}
			seen[id] = true
		}
	}
}

func TestPhotoSector(t *testing.T) {
	p := samplePhoto()
	s := p.Sector()
	if s.Apex != p.Location || s.Radius != p.Range || s.FOV != p.FOV {
		t.Fatalf("sector does not mirror metadata: %+v", s)
	}
	// The sector should contain a point straight ahead of the camera.
	ahead := p.Location.Add(geo.FromAngle(p.Orientation).Scale(p.Range / 2))
	if !s.Contains(ahead) {
		t.Fatal("point straight ahead not covered")
	}
}

func TestPhotoValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Photo)
		wantErr error
	}{
		{"valid", func(*Photo) {}, nil},
		{"zero range", func(p *Photo) { p.Range = 0 }, ErrBadRange},
		{"negative range", func(p *Photo) { p.Range = -1 }, ErrBadRange},
		{"nan range", func(p *Photo) { p.Range = math.NaN() }, ErrBadRange},
		{"zero fov", func(p *Photo) { p.FOV = 0 }, ErrBadFOV},
		{"fov too wide", func(p *Photo) { p.FOV = geo.TwoPi + 0.1 }, ErrBadFOV},
		{"zero size", func(p *Photo) { p.Size = 0 }, ErrBadSize},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := samplePhoto()
			tt.mutate(&p)
			err := p.Validate()
			if tt.wantErr == nil {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestHistogramDistance(t *testing.T) {
	a := Histogram{1, 0, 0, 0, 0, 0, 0, 0}
	b := Histogram{0, 1, 0, 0, 0, 0, 0, 0}
	if got := a.Distance(b); got != 2 {
		t.Fatalf("Distance = %v, want 2", got)
	}
	if got := a.Distance(a); got != 0 {
		t.Fatalf("self distance = %v, want 0", got)
	}
}

func TestHistogramDistanceProperties(t *testing.T) {
	f := func(a, b Histogram) bool {
		for i := range a {
			if math.IsNaN(a[i]) || math.IsNaN(b[i]) || math.IsInf(a[i], 0) || math.IsInf(b[i], 0) {
				return true
			}
		}
		d1, d2 := a.Distance(b), b.Distance(a)
		return d1 == d2 && d1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPhotoListHelpers(t *testing.T) {
	p1, p2 := samplePhoto(), samplePhoto()
	p2.ID = MakePhotoID(4, 1)
	p2.Size = 1 << 20
	l := PhotoList{p1, p2}
	if got := l.TotalSize(); got != p1.Size+p2.Size {
		t.Fatalf("TotalSize = %d", got)
	}
	if ids := l.IDs(); len(ids) != 2 || ids[0] != p1.ID || ids[1] != p2.ID {
		t.Fatalf("IDs = %v", ids)
	}
	if !l.Contains(p1.ID) || l.Contains(MakePhotoID(9, 9)) {
		t.Fatal("Contains wrong")
	}
	c := l.Clone()
	c[0].Size = 1
	if l[0].Size == 1 {
		t.Fatal("Clone aliases original")
	}
	if PhotoList(nil).Clone() != nil {
		t.Fatal("nil clone should stay nil")
	}
}

func TestPhotoBinaryRoundTrip(t *testing.T) {
	p := samplePhoto()
	data, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != photoWireSize {
		t.Fatalf("encoded size = %d, want %d", len(data), photoWireSize)
	}
	var q Photo
	if err := q.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", q, p)
	}
}

func TestPhotoBinaryRoundTripProperty(t *testing.T) {
	f := func(id uint64, owner int32, x, y, r, fov, o float64, size int64) bool {
		p := Photo{
			ID: PhotoID(id), Owner: NodeID(owner),
			Location: geo.Vec{X: x, Y: y}, Range: r, FOV: fov, Orientation: o,
			Size: size,
		}
		data := p.AppendBinary(nil)
		q, rest, err := DecodePhoto(data)
		if err != nil || len(rest) != 0 {
			return false
		}
		// NaN != NaN, so compare bit patterns via re-encoding.
		return string(q.AppendBinary(nil)) == string(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodePhotoShort(t *testing.T) {
	p := samplePhoto()
	data := p.AppendBinary(nil)
	for _, n := range []int{0, 1, photoWireSize - 1} {
		if _, _, err := DecodePhoto(data[:n]); !errors.Is(err, ErrShortBuffer) {
			t.Fatalf("len %d: err = %v, want ErrShortBuffer", n, err)
		}
	}
}

func TestUnmarshalBinaryTrailing(t *testing.T) {
	data := samplePhoto().AppendBinary(nil)
	data = append(data, 0xFF)
	var p Photo
	if err := p.UnmarshalBinary(data); err == nil {
		t.Fatal("expected error on trailing bytes")
	}
}

func TestPhotoListBinaryRoundTrip(t *testing.T) {
	l := PhotoList{samplePhoto(), samplePhoto(), samplePhoto()}
	l[1].ID = MakePhotoID(5, 0)
	l[2].ID = MakePhotoID(6, 1)
	data := l.AppendBinary(nil)
	got, rest, err := DecodePhotoList(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if len(got) != len(l) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range l {
		if got[i] != l[i] {
			t.Fatalf("photo %d mismatch", i)
		}
	}
}

func TestPhotoListBinaryEmpty(t *testing.T) {
	data := PhotoList{}.AppendBinary(nil)
	got, rest, err := DecodePhotoList(data)
	if err != nil || len(got) != 0 || len(rest) != 0 {
		t.Fatalf("empty list round trip: %v %v %v", got, rest, err)
	}
}

func TestDecodePhotoListCorrupt(t *testing.T) {
	if _, _, err := DecodePhotoList([]byte{1, 2}); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("err = %v", err)
	}
	// Claim 1000 photos but supply none.
	data := []byte{0xE8, 0x03, 0, 0}
	if _, _, err := DecodePhotoList(data); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("err = %v", err)
	}
}

func TestPhotoJSONRoundTrip(t *testing.T) {
	p := samplePhoto()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Photo
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Fatalf("json round trip mismatch: %+v", q)
	}
}

func TestNewPoI(t *testing.T) {
	p := NewPoI(3, geo.Vec{X: 1, Y: 2})
	if p.ID != 3 || p.Weight != 1 || p.Location != (geo.Vec{X: 1, Y: 2}) {
		t.Fatalf("NewPoI = %+v", p)
	}
}
