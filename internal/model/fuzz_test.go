package model

import (
	"bytes"
	"testing"
)

// FuzzDecodePhotoList hammers the binary photo codec: it must never panic,
// and accepted inputs must round trip byte-for-byte.
func FuzzDecodePhotoList(f *testing.F) {
	f.Add(PhotoList{samplePhoto()}.AppendBinary(nil))
	f.Add(PhotoList{}.AppendBinary(nil))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		list, rest, err := DecodePhotoList(data)
		if err != nil {
			return
		}
		consumed := data[:len(data)-len(rest)]
		if !bytes.Equal(list.AppendBinary(nil), consumed) {
			t.Fatal("accepted photo list does not round trip")
		}
	})
}
