// Package model defines the domain objects shared across the framework:
// photo metadata, points of interest, and node identities. A photo is never
// represented by pixels anywhere in this repository — exactly as in the
// paper, the framework reasons only about the lightweight metadata tuple
// (location, coverage range, field-of-view, orientation).
package model

import (
	"errors"
	"fmt"
	"math"

	"photodtn/internal/geo"
)

// CommandCenter is the reserved node ID of the command center n0.
const CommandCenter NodeID = 0

// NodeID identifies a participant. ID 0 is the command center.
type NodeID int32

// IsCommandCenter reports whether the ID denotes the command center.
func (n NodeID) IsCommandCenter() bool { return n == CommandCenter }

// String implements fmt.Stringer.
func (n NodeID) String() string {
	if n.IsCommandCenter() {
		return "n0(CC)"
	}
	return fmt.Sprintf("n%d", int32(n))
}

// PhotoID identifies a photo globally. It encodes the owner node and a
// per-owner sequence number so IDs can be minted without coordination —
// exactly what a real DTN deployment needs.
type PhotoID uint64

// MakePhotoID mints the photo ID for the seq-th photo taken by owner.
func MakePhotoID(owner NodeID, seq uint32) PhotoID {
	return PhotoID(uint64(uint32(owner))<<32 | uint64(seq))
}

// Owner returns the node that minted the ID.
func (id PhotoID) Owner() NodeID { return NodeID(uint32(id >> 32)) }

// Seq returns the per-owner sequence number.
func (id PhotoID) Seq() uint32 { return uint32(id) }

// String implements fmt.Stringer.
func (id PhotoID) String() string {
	return fmt.Sprintf("photo(%v#%d)", id.Owner(), id.Seq())
}

// HistogramBins is the number of bins of the synthetic colour histogram
// carried for the PhotoNet baseline.
const HistogramBins = 8

// Histogram is a normalized colour histogram. It only exists to reproduce
// the PhotoNet baseline, which ranks photos by colour difference; our scheme
// never reads it.
type Histogram [HistogramBins]float64

// Distance returns the L1 distance between two histograms.
func (h Histogram) Distance(o Histogram) float64 {
	var d float64
	for i := range h {
		d += math.Abs(h[i] - o[i])
	}
	return d
}

// Photo is the metadata tuple (l, r, φ, d) of §II-A plus the bookkeeping a
// DTN node needs (identity, owner, capture time, size on disk).
type Photo struct {
	ID    PhotoID `json:"id"`
	Owner NodeID  `json:"owner"`
	// TakenAt is the capture time in seconds since the crowdsourcing event
	// started.
	TakenAt float64 `json:"taken_at"`
	// Location is the camera position l in metres.
	Location geo.Vec `json:"location"`
	// Range is the coverage range r in metres.
	Range float64 `json:"range"`
	// FOV is the field-of-view φ in radians.
	FOV float64 `json:"fov"`
	// Orientation is the camera orientation d as an angle in radians.
	Orientation float64 `json:"orientation"`
	// Size is the size of the image file in bytes. Metadata itself is
	// assumed to be negligible (a couple of floats, per the paper).
	Size int64 `json:"size"`
	// Quality is an application-supplied quality score in (0, 1] — sharpness,
	// exposure, etc. Zero means "not assessed" and is treated as acceptable.
	// §II-C: applications "use a binary threshold to filter out unqualified
	// photos before using our model"; see the framework's MinQuality knob.
	Quality float64 `json:"quality,omitempty"`
	// Hist is the synthetic colour histogram used only by the PhotoNet
	// baseline.
	Hist Histogram `json:"hist,omitempty"`
}

// Sector returns the coverage area of the photo.
func (p Photo) Sector() geo.Sector {
	return geo.NewSector(p.Location, p.Range, p.Orientation, p.FOV)
}

// Errors returned by Photo.Validate.
var (
	ErrBadRange = errors.New("model: coverage range must be positive")
	ErrBadFOV   = errors.New("model: field-of-view must be in (0, 2π]")
	ErrBadSize  = errors.New("model: photo size must be positive")
)

// Validate reports whether the metadata tuple is physically meaningful.
func (p Photo) Validate() error {
	if p.Range <= 0 || math.IsNaN(p.Range) || math.IsInf(p.Range, 0) {
		return fmt.Errorf("%w: got %v", ErrBadRange, p.Range)
	}
	if p.FOV <= 0 || p.FOV > geo.TwoPi || math.IsNaN(p.FOV) {
		return fmt.Errorf("%w: got %v", ErrBadFOV, p.FOV)
	}
	if p.Size <= 0 {
		return fmt.Errorf("%w: got %d", ErrBadSize, p.Size)
	}
	return nil
}

// PoI is a point of interest from the command center's PoI list. The weight
// implements the paper's §II-C extension: a photo point-covering a PoI of
// weight w contributes w instead of 1 to point coverage, and aspect arcs are
// scaled by w.
type PoI struct {
	ID       int     `json:"id"`
	Location geo.Vec `json:"location"`
	Weight   float64 `json:"weight"`
}

// NewPoI returns a unit-weight PoI.
func NewPoI(id int, loc geo.Vec) PoI {
	return PoI{ID: id, Location: loc, Weight: 1}
}

// PhotoList is a collection of photos with set-style helpers.
type PhotoList []Photo

// TotalSize returns the cumulative byte size of the photos.
func (l PhotoList) TotalSize() int64 {
	var s int64
	for _, p := range l {
		s += p.Size
	}
	return s
}

// IDs returns the photo IDs in order.
func (l PhotoList) IDs() []PhotoID {
	out := make([]PhotoID, len(l))
	for i, p := range l {
		out[i] = p.ID
	}
	return out
}

// Contains reports whether the list holds a photo with the given ID.
func (l PhotoList) Contains(id PhotoID) bool {
	for _, p := range l {
		if p.ID == id {
			return true
		}
	}
	return false
}

// Clone returns a shallow copy of the list.
func (l PhotoList) Clone() PhotoList {
	if l == nil {
		return nil
	}
	out := make(PhotoList, len(l))
	copy(out, l)
	return out
}
