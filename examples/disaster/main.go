// Disaster runs the motivating scenario end-to-end: a town's cellular
// network is down after an earthquake; 97 participants photograph 250
// points of interest over 60 hours; two rescuers carry satellite radios.
// The example compares what the command center learns under our scheme and
// under content-blind routing.
package main

import (
	"fmt"
	"os"

	"photodtn"
	"photodtn/internal/experiments"
	"photodtn/internal/geo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "disaster:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("Earthquake scenario: 97 participants, 250 PoIs, 2 satellite gateways,")
	fmt.Println("0.6 GB per phone, 250 photos/hour, 60 hours of crowdsourcing.")

	p := experiments.DefaultParams(experiments.MIT)
	p.SpanHours = 60
	p.SampleHours = 20

	type row struct {
		scheme string
		avg    *photodtn.SimAverage
	}
	var rows []row
	for _, scheme := range []string{
		experiments.SchemeOurs,
		experiments.SchemeModifiedSpray,
		experiments.SchemeSprayAndWait,
	} {
		avg, err := experiments.RunAveraged(p, scheme, 2, 1)
		if err != nil {
			return err
		}
		rows = append(rows, row{scheme, avg})
	}

	fmt.Printf("\n%-16s %12s %16s %12s %14s\n",
		"scheme", "PoIs seen", "aspect (°/PoI)", "delivered", "transferred")
	for _, r := range rows {
		fmt.Printf("%-16s %11.0f%% %16.1f %12.0f %14.0f\n",
			r.scheme,
			100*r.avg.Final.PointFrac,
			geo.Degrees(r.avg.Final.AspectRad),
			r.avg.Final.Delivered,
			r.avg.TransferredPhotos)
	}
	ours, spray := rows[0].avg.Final, rows[2].avg.Final
	fmt.Printf("\nWith identical radios and storage, the resource-aware framework saw\n")
	fmt.Printf("%.0f%% of the town's points of interest versus %.0f%% for Spray&Wait,\n",
		100*ours.PointFrac, 100*spray.PointFrac)
	fmt.Printf("with %.1fx the viewing angles per target.\n",
		safeRatio(geo.Degrees(ours.AspectRad), geo.Degrees(spray.AspectRad)))
	return nil
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
