// Quickstart: the photo coverage model and the greedy selection in one
// minute. Two points of interest, a handful of photos, and a storage budget
// that forces choices.
package main

import (
	"fmt"

	"photodtn"
)

func main() {
	// The command center cares about two targets.
	pois := []photodtn.PoI{
		photodtn.NewPoI(0, photodtn.Vec{X: 0, Y: 0}),     // collapsed school
		photodtn.NewPoI(1, photodtn.Vec{X: 500, Y: 200}), // damaged bridge
	}
	// Effective angle θ = 30°: one photo credits a ±30° arc of aspects.
	m := photodtn.NewMap(pois, photodtn.Radians(30))

	// A participant's photos: metadata only — location, range, FOV,
	// orientation. No pixels anywhere.
	photo := func(seq uint32, at photodtn.Vec, lookDeg float64) photodtn.Photo {
		return photodtn.Photo{
			ID: photodtn.PhotoID(seq), Owner: 1,
			Location: at, Range: 150,
			FOV:         photodtn.Radians(50),
			Orientation: photodtn.Radians(lookDeg),
			Size:        4 << 20,
		}
	}
	photos := photodtn.PhotoList{
		photo(1, photodtn.Vec{X: 80, Y: 0}, 180),    // school from the east
		photo(2, photodtn.Vec{X: 85, Y: 5}, 182),    // ...nearly the same shot
		photo(3, photodtn.Vec{X: 0, Y: 90}, 270),    // school from the north
		photo(4, photodtn.Vec{X: 420, Y: 200}, 0),   // bridge from the west
		photo(5, photodtn.Vec{X: 2000, Y: 2000}, 0), // covers nothing
	}

	cov := m.Of(photos)
	pt, as := m.Normalized(cov)
	fmt.Printf("all %d photos: %.0f%% of PoIs covered, %.0f° mean aspect\n",
		len(photos), 100*pt, photodtn.Degrees(as))

	// Storage for only three photos: the greedy keeps one of the duplicate
	// school shots, the north shot, and the bridge shot — and drops the
	// irrelevant photo for free.
	fpc := photodtn.NewFootprintCache(m)
	res := photodtn.Reallocate(fpc, photodtn.DefaultSelectionConfig(), nil, nil,
		photodtn.Alloc{Node: 1, P: 0.9, Capacity: 12 << 20, Photos: photos},
		photodtn.Alloc{Node: 2, P: 0.1, Capacity: 0},
	)
	fmt.Printf("greedy keeps %d photos under a 12 MB budget:\n", len(res.ASel))
	for i, p := range res.ASel {
		fmt.Printf("  %d. photo %d at %v looking %.0f°\n",
			i+1, uint64(p.ID), p.Location, photodtn.Degrees(p.Orientation))
	}
	fmt.Printf("their coverage: %v (vs %v with everything)\n", m.Of(res.ASel), cov)
}
