// Geotown runs a fully geometric scenario: pedestrians roam a 2 km² town
// under a random-waypoint mobility model; the SAME trajectories produce the
// DTN contacts (radio range) and the photo workload (people photograph the
// landmarks they walk past). The framework then crowdsources the landmarks
// to a command center reachable through one gateway.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"photodtn"
	"photodtn/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "geotown:", err)
		os.Exit(1)
	}
}

func run() error {
	const spanHours = 6
	cfg := photodtn.DefaultMobilityConfig(30, spanHours*3600)
	cfg.Region = photodtn.Square(1500)
	cfg.Range = 60
	cfg.Seed = 7

	tracks, err := photodtn.GenerateTracks(cfg)
	if err != nil {
		return err
	}
	tr, err := photodtn.ExtractContacts(cfg, tracks)
	if err != nil {
		return err
	}
	fmt.Printf("town: %d pedestrians over %d h, radio range %.0f m → %d contacts\n",
		cfg.Nodes, spanHours, cfg.Range, tr.Len())

	// Five landmarks.
	pois := []photodtn.PoI{
		photodtn.NewPoI(0, photodtn.Vec{X: 300, Y: 300}),
		photodtn.NewPoI(1, photodtn.Vec{X: 1200, Y: 300}),
		photodtn.NewPoI(2, photodtn.Vec{X: 750, Y: 750}),
		photodtn.NewPoI(3, photodtn.Vec{X: 300, Y: 1200}),
		photodtn.NewPoI(4, photodtn.Vec{X: 1200, Y: 1200}),
	}
	m := photodtn.NewMap(pois, photodtn.Radians(30))

	wl := workload.Default(cfg.Nodes, cfg.Span)
	wl.Region = cfg.Region
	wl.PhotosPerHour = 120
	rng := rand.New(rand.NewSource(11))
	photos, err := photodtn.AimedPhotoWorkload(cfg, wl, tracks, pois, rng)
	if err != nil {
		return err
	}
	fmt.Printf("workload: %d photos taken along trajectories\n", len(photos))

	simCfg := photodtn.SimConfig{
		Trace:           tr,
		Map:             m,
		Photos:          photos,
		StorageBytes:    200 << 20, // 50 photos per phone
		Gateways:        []photodtn.NodeID{1},
		GatewayInterval: 3600,
		GatewayDuration: 300,
		Seed:            1,
	}
	fmt.Printf("\n%-16s %12s %16s %12s\n", "scheme", "PoIs seen", "aspect (°/PoI)", "delivered")
	for _, scheme := range []photodtn.Scheme{
		photodtn.NewFramework(photodtn.DefaultFrameworkConfig()),
		photodtn.NewSprayAndWait(),
	} {
		res, err := photodtn.RunSimulation(simCfg, scheme)
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %11.0f%% %16.1f %12d\n", scheme.Name(),
			100*res.Final.PointFrac, photodtn.Degrees(res.Final.AspectRad), res.Final.Delivered)
	}
	return nil
}
