// Livenodes runs the prototype path for real: a command center and four
// participant peers exchange photos over localhost TCP using the wire
// protocol, and the photos themselves come out of the simulated phone
// pipeline (GPS + sensor-fused orientation + the r = c·cot(φ/2) law) —
// everything the paper's Android prototype does, minus the pixels.
package main

import (
	"fmt"
	"net"
	"os"
	"sync/atomic"

	"photodtn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "livenodes:", err)
		os.Exit(1)
	}
}

func run() error {
	// One PoI: the town hall. Effective angle 30°.
	hall := photodtn.NewPoI(0, photodtn.Vec{X: 300, Y: 300})
	m := photodtn.NewMap([]photodtn.PoI{hall}, photodtn.Radians(30))

	// The command center listens on localhost. The logical clock is shared
	// by every peer and ticked from multiple goroutines, so it is atomic.
	var logical atomic.Int64
	clock := func() float64 { return float64(logical.Add(1)) }
	cc := photodtn.NewPeer(photodtn.CommandCenter, m, 0, photodtn.WithClock(clock), photodtn.WithSeed(1))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer func() { _ = l.Close() }()
	serveDone := make(chan error, 1)
	go func() { serveDone <- cc.Serve(l) }()
	fmt.Printf("command center listening on %s\n", l.Addr())

	// Four participants photograph the hall from different streets, using
	// the full phone pipeline.
	peers := make([]*photodtn.Peer, 0, 4)
	standpoints := []photodtn.Vec{
		{X: 380, Y: 300}, // east
		{X: 300, Y: 380}, // north
		{X: 220, Y: 300}, // west
		{X: 300, Y: 220}, // south
	}
	for i, at := range standpoints {
		id := photodtn.NodeID(i + 1)
		phone, err := photodtn.NewPhone(id, photodtn.DefaultPhoneConfig(), int64(i)+10)
		if err != nil {
			return err
		}
		phone.MoveTo(at)
		phone.AimAt(hall.Location)
		photo := phone.Capture(float64(i))
		fmt.Printf("  %v shot the hall from %v looking %.0f° (fused-orientation error %.1f°)\n",
			id, at, photodtn.Degrees(photo.Orientation), photodtn.Degrees(phone.HeadingError()))

		p := photodtn.NewPeer(id, m, 40<<20, photodtn.WithClock(clock), photodtn.WithSeed(int64(i)+20))
		if err := p.AddPhoto(photo); err != nil {
			return err
		}
		peers = append(peers, p)
	}

	// Peer 1 is the gateway: it meets the command center, then the others,
	// then the command center again — a data-mule round.
	addr := l.Addr().String()
	if err := peers[0].Contact(addr); err != nil {
		return fmt.Errorf("gateway upload 1: %w", err)
	}
	for _, other := range peers[1:] {
		if err := meet(other, peers[0]); err != nil {
			return err
		}
	}
	if err := peers[0].Contact(addr); err != nil {
		return fmt.Errorf("gateway upload 2: %w", err)
	}

	cov := cc.Coverage()
	fmt.Printf("\ncommand center received %d photos; coverage %v\n", len(cc.Photos()), cov)
	if err := l.Close(); err != nil {
		return err
	}
	if err := <-serveDone; err != nil {
		return err
	}
	return nil
}

// meet runs a peer-to-peer contact over a real TCP connection.
func meet(a, b *photodtn.Peer) error {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer func() { _ = conn.Close() }()
		done <- b.ContactConn(conn, false)
	}()
	if err := a.Contact(l.Addr().String()); err != nil {
		return err
	}
	if err := <-done; err != nil {
		return err
	}
	return l.Close()
}
