// Priorities demonstrates the paper's §II-C extensions: weighted PoIs (a
// hospital matters more than a warehouse), weighted aspects (the hospital's
// main entrance matters most), and the photo-quality threshold. Watch the
// greedy's choices flip as the priorities change.
package main

import (
	"fmt"

	"photodtn"
	"photodtn/internal/coverage"
)

func main() {
	hospital := photodtn.Vec{X: 0, Y: 0}
	warehouse := photodtn.Vec{X: 600, Y: 0}

	photo := func(seq uint32, at photodtn.Vec, lookDeg float64) photodtn.Photo {
		return photodtn.Photo{
			ID: photodtn.PhotoID(seq), Owner: 1, Location: at,
			Range: 150, FOV: photodtn.Radians(50),
			Orientation: photodtn.Radians(lookDeg), Size: 4 << 20,
		}
	}
	// One photo of each target, plus a second hospital view from the south
	// (the entrance side).
	hospitalEast := photo(1, photodtn.Vec{X: 90, Y: 0}, 180)
	hospitalSouth := photo(2, photodtn.Vec{X: 0, Y: -90}, 90)
	warehouseShot := photo(0, photodtn.Vec{X: 510, Y: 0}, 0) // lowest ID: wins ties
	all := photodtn.PhotoList{hospitalEast, hospitalSouth, warehouseShot}

	pick := func(m *photodtn.Map, budgetPhotos int64) photodtn.PhotoList {
		fpc := photodtn.NewFootprintCache(m)
		res := photodtn.Reallocate(fpc, photodtn.DefaultSelectionConfig(), nil, nil,
			photodtn.Alloc{Node: 1, P: 0.9, Capacity: budgetPhotos * (4 << 20), Photos: all},
			photodtn.Alloc{Node: 2, P: 0.1, Capacity: 0},
		)
		return res.ASel
	}
	show := func(title string, sel photodtn.PhotoList) {
		fmt.Printf("%-46s →", title)
		for _, p := range sel {
			name := map[uint32]string{1: "hospital/east", 2: "hospital/south", 0: "warehouse"}[uint32(p.ID)]
			fmt.Printf(" %s", name)
		}
		fmt.Println()
	}

	// 1. Unweighted: with room for two photos, point coverage wins — one
	// photo per target.
	plain := photodtn.NewMap([]photodtn.PoI{
		photodtn.NewPoI(0, hospital), photodtn.NewPoI(1, warehouse),
	}, photodtn.Radians(30))
	show("equal priorities, 2-photo budget", pick(plain, 2))

	// 2. Weighted PoI: the hospital weighs 5×. A single-photo budget now
	// must go to the hospital.
	weighted := photodtn.NewMap([]photodtn.PoI{
		{ID: 0, Location: hospital, Weight: 5},
		{ID: 1, Location: warehouse, Weight: 1},
	}, photodtn.Radians(30))
	show("hospital ×5, 1-photo budget", pick(weighted, 1))
	show("equal priorities, 1-photo budget", pick(plain, 1))

	// 3. Weighted aspects: the hospital's south-facing entrance arc weighs
	// 10×, so the south view beats the east view.
	entrance := coverage.AspectProfile{Base: 1, Segments: []coverage.WeightedArc{
		{Arc: coverage.ArcAroundDeg(270, 40), Weight: 10},
	}}
	aspectMap := photodtn.NewMap([]photodtn.PoI{
		photodtn.NewPoI(0, hospital), photodtn.NewPoI(1, warehouse),
	}, photodtn.Radians(30), coverage.WithAspectProfile(0, entrance))
	show("entrance aspects ×10, 1-photo budget", pick(aspectMap, 1))

	// 4. Quality threshold: a blurred photo is filtered before the model
	// ever sees it (shown via the framework's capture filter in tests;
	// here, the metadata carries the score).
	blurry := hospitalSouth
	blurry.Quality = 0.1
	fmt.Printf("\nblurred south view carries quality %.1f — the framework's\n", blurry.Quality)
	fmt.Println("MinQuality knob drops it at capture (core.Config.MinQuality).")
}
