// Churchdemo reproduces the paper's §IV prototype demonstration (Fig. 3/4):
// eight participants hold 40 photos taken around a church; the last 48
// contacts of a small DTN trace (three photos per contact, five per device)
// decide what reaches the command center. Our scheme delivers roughly half
// as many photos as Spray&Wait or PhotoNet while covering the church from
// nearly all sides.
package main

import (
	"fmt"
	"os"

	"photodtn"
)

func main() {
	res, err := photodtn.RunDemo(photodtn.DefaultDemoConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "churchdemo:", err)
		os.Exit(1)
	}
	fmt.Print(res.Format())

	fmt.Println("\nHow to read this: every scheme had the same four chances to hand")
	fmt.Println("photos to the command center, three photos each. The content-blind")
	fmt.Println("schemes spend them on whatever is in the buffer; our scheme spends")
	fmt.Println("them on the photos that extend the covered arc around the target.")
}
