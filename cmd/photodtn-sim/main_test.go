package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunShortSimulation(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{
		"-trace", "cambridge", "-scheme", "Spray&Wait",
		"-span", "20", "-sample", "10", "-runs", "1",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{"scheme=Spray&Wait", "point cov.", "final", "transferred photos"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunWithFaults(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{
		"-trace", "cambridge", "-scheme", "Spray&Wait",
		"-span", "20", "-sample", "10", "-runs", "1",
		"-fail-rate", "0.5", "-frame-loss", "0.1", "-fault-seed", "7",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{"faults:", "crashes=", "aborted-transfers="} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestFaultFlagsStrictNoOpWhenZero(t *testing.T) {
	base := []string{
		"-trace", "cambridge", "-scheme", "Spray&Wait",
		"-span", "20", "-sample", "10", "-runs", "1",
	}
	var plain, zeroed strings.Builder
	if err := run(context.Background(), base, &plain); err != nil {
		t.Fatal(err)
	}
	// A nonzero fault seed alone must not enable the model or perturb
	// anything: the output is byte-identical.
	if err := run(context.Background(), append(append([]string{}, base...), "-fault-seed", "99"), &zeroed); err != nil {
		t.Fatal(err)
	}
	if plain.String() != zeroed.String() {
		t.Fatalf("zero-rate fault flags changed the run:\n%s\nvs\n%s", plain.String(), zeroed.String())
	}
}

func TestWorkersAndCheckpoint(t *testing.T) {
	base := []string{
		"-trace", "cambridge", "-scheme", "Spray&Wait",
		"-span", "20", "-sample", "10", "-runs", "3",
	}
	var serial, parallel, resumed strings.Builder
	if err := run(context.Background(), append(append([]string{}, base...), "-workers", "1"), &serial); err != nil {
		t.Fatal(err)
	}
	cp := filepath.Join(t.TempDir(), "cells.jsonl")
	withCp := append(append([]string{}, base...), "-workers", "4", "-checkpoint", cp)
	if err := run(context.Background(), withCp, &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Fatalf("-workers 4 output diverges from -workers 1:\n%s\nvs\n%s",
			parallel.String(), serial.String())
	}
	// Rerunning against the checkpoint resumes every run, byte-identically.
	if err := run(context.Background(), withCp, &resumed); err != nil {
		t.Fatal(err)
	}
	if resumed.String() != serial.String() {
		t.Fatal("resumed output diverges")
	}
}

func TestBadFlags(t *testing.T) {
	tests := [][]string{
		{"-trace", "bogus"},
		{"-scheme", "bogus", "-span", "5"},
		{"-trace", "cambridge", "-span", "5", "-frame-loss", "1.5"},
		{"-trace", "cambridge", "-span", "5", "-fail-rate", "-0.1"},
	}
	for _, args := range tests {
		var sb strings.Builder
		if err := run(context.Background(), args, &sb); err == nil {
			t.Fatalf("args %v: expected error", args)
		}
	}
}

func TestRunOnTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "custom.trace")
	if err := os.WriteFile(path, []byte("nodes 5\n100 200 1 2\n300 400 2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err := run(context.Background(), []string{"-trace", path, "-scheme", "Epidemic", "-span", "1", "-sample", "1", "-runs", "1"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "scheme=Epidemic") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestRunOnMissingTraceFile(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-trace", "/nonexistent.trace"}, &sb); err == nil {
		t.Fatal("expected error")
	}
}
