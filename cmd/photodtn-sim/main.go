// Command photodtn-sim runs one trace-driven photo crowdsourcing
// simulation and prints the command center's coverage over time.
//
// Usage:
//
//	photodtn-sim [-trace mit|cambridge|FILE] [-scheme NAME] [-storage GB]
//	             [-rate PHOTOS/H] [-bandwidth MB/S] [-cap SECONDS]
//	             [-span HOURS] [-sample HOURS] [-runs N] [-seed S]
//	             [-workers N] [-checkpoint FILE]
//	             [-fail-rate P] [-fail-downtime H] [-frame-loss P]
//	             [-contact-drop P] [-gateway-outage P] [-clock-skew S]
//	             [-fault-seed S] [-trace-out FILE] [-metrics-out FILE]
//
// Repeated runs (-runs N) execute on the parallel orchestrator: -workers
// bounds the concurrency (default GOMAXPROCS; the averages are
// bit-identical for any value) and -checkpoint makes interrupted
// invocations resumable. Ctrl-C finishes in-flight runs and exits.
//
// The -fail-rate, -frame-loss, and companion flags enable the deterministic
// fault model of internal/faults; with all of them zero the run is
// bit-identical to a fault-free simulation.
//
// The -trace-out flag streams the run's structured event trace as JSONL
// (requires -runs 1 so events are not interleaved across runs); -metrics-out
// dumps every subsystem counter/histogram as JSON. Both write a run manifest
// (config hash, seed, git revision, machine) next to the output file. With
// neither flag set, observability is fully disabled and the simulation is
// bit-identical to an unobserved run.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"photodtn/internal/experiments"
	"photodtn/internal/faults"
	"photodtn/internal/geo"
	"photodtn/internal/obs"
	"photodtn/internal/runner"
	"photodtn/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "photodtn-sim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("photodtn-sim", flag.ContinueOnError)
	var (
		traceName = fs.String("trace", "mit", "contact trace: mit, cambridge, or a trace file path")
		scheme    = fs.String("scheme", experiments.SchemeOurs,
			"scheme: "+strings.Join(append(experiments.AllSchemes[:len(experiments.AllSchemes):len(experiments.AllSchemes)], experiments.SchemePhotoNet), ", "))
		storage   = fs.Float64("storage", 0.6, "per-node storage in GB")
		rate      = fs.Float64("rate", 250, "photo generation rate per hour")
		bandwidth = fs.Float64("bandwidth", 0, "radio bandwidth in MB/s (0 = unlimited)")
		capSec    = fs.Float64("cap", 0, "contact duration cap in seconds (0 = none)")
		span      = fs.Float64("span", 0, "simulated hours (0 = full trace)")
		sample    = fs.Float64("sample", 25, "sampling period in hours")
		runs      = fs.Int("runs", 1, "averaged runs")
		seed      = fs.Int64("seed", 1, "base seed")
		workers   = fs.Int("workers", 0, "concurrent runs; 0 means GOMAXPROCS (averages are identical for any value)")
		ckpt      = fs.String("checkpoint", "", "record completed runs to this JSONL file and resume from it")

		failRate  = fs.Float64("fail-rate", 0, "fraction of nodes that crash during the run (loses stored photos)")
		downtime  = fs.Float64("fail-downtime", 0, "mean downtime after a crash in hours (0 = crashed nodes never rejoin)")
		frameLoss = fs.Float64("frame-loss", 0, "per-photo frame-loss probability (a loss aborts the contact)")
		drop      = fs.Float64("contact-drop", 0, "probability a contact never happens")
		outage    = fs.Float64("gateway-outage", 0, "probability a gateway contact is lost")
		skew      = fs.Float64("clock-skew", 0, "max per-node clock skew in seconds")
		faultSeed = fs.Int64("fault-seed", 0, "fault realisation seed (combined with the run seed)")

		traceOut   = fs.String("trace-out", "", "write the structured event trace as JSONL to this file (requires -runs 1)")
		metricsOut = fs.String("metrics-out", "", "write subsystem counters/histograms as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		kind   experiments.TraceKind
		custom *trace.Trace
	)
	switch *traceName {
	case "mit":
		kind = experiments.MIT
	case "cambridge":
		kind = experiments.Cambridge
	default:
		f, err := os.Open(*traceName)
		if err != nil {
			return fmt.Errorf("trace %q is neither a preset nor a readable file: %w", *traceName, err)
		}
		custom, err = trace.Read(f)
		_ = f.Close()
		if err != nil {
			return fmt.Errorf("parse trace file %q: %w", *traceName, err)
		}
		kind = experiments.MIT // label only; the custom trace wins
	}
	p := experiments.DefaultParams(kind)
	p.CustomTrace = custom
	p.StorageGB = *storage
	p.PhotosPerHour = *rate
	p.BandwidthMBs = *bandwidth
	p.ContactCapSec = *capSec
	p.SpanHours = *span
	p.SampleHours = *sample

	fc := faults.Config{
		Seed:              *faultSeed,
		NodeFailRate:      *failRate,
		MeanDowntimeSec:   *downtime * 3600,
		FrameLossProb:     *frameLoss,
		ContactDropProb:   *drop,
		GatewayOutageProb: *outage,
		ClockSkewMaxSec:   *skew,
	}
	if err := fc.Validate(); err != nil {
		return err
	}
	if fc.Enabled() {
		p.Faults = &fc
	}

	var (
		observer  *obs.Observer
		traceFile *os.File
	)
	if *traceOut != "" || *metricsOut != "" {
		var sink io.Writer
		if *traceOut != "" {
			if *runs != 1 {
				return fmt.Errorf("-trace-out requires -runs 1: events from parallel runs would interleave")
			}
			f, err := os.Create(*traceOut)
			if err != nil {
				return fmt.Errorf("trace-out: %w", err)
			}
			defer f.Close()
			traceFile = f
			sink = f
		}
		observer = obs.New(obs.DefaultTraceCap, sink)
		p.Obs = observer
	}

	opts := experiments.Options{Runs: *runs, BaseSeed: *seed, Workers: *workers}.WithContext(ctx)
	if *ckpt != "" {
		cp, err := runner.OpenCheckpoint(*ckpt)
		if err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		defer cp.Close()
		opts.Checkpoint = cp
	}
	avg, err := experiments.RunAveragedContext(ctx, p, *scheme, opts)
	if err != nil {
		return err
	}
	if observer != nil {
		if err := writeObsOutputs(observer, traceFile, *traceOut, *metricsOut, args, p, *scheme, *runs, *seed); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "scheme=%s trace=%v storage=%.2fGB rate=%.0f/h runs=%d\n",
		avg.Scheme, kind, *storage, *rate, avg.Runs)
	fmt.Fprintf(stdout, "%10s %14s %16s %12s\n", "hours", "point cov.", "aspect (°/PoI)", "delivered")
	for _, s := range avg.Samples {
		fmt.Fprintf(stdout, "%10.0f %14.3f %16.1f %12.1f\n",
			s.Time/3600, s.PointFrac, geo.Degrees(s.AspectRad), s.Delivered)
	}
	fmt.Fprintf(stdout, "%10s %14.3f %16.1f %12.1f\n",
		"final", avg.Final.PointFrac, geo.Degrees(avg.Final.AspectRad), avg.Final.Delivered)
	fmt.Fprintf(stdout, "transferred photos (avg): %.0f\n", avg.TransferredPhotos)
	if p.Faults != nil {
		fmt.Fprintf(stdout, "faults: crashes=%.1f photos-lost=%.1f aborted-transfers=%.1f mean-recovery=%.0fs\n",
			avg.NodeCrashes, avg.PhotosLostToCrash, avg.AbortedTransfers, avg.MeanRecoverySec)
	}
	return nil
}

// writeObsOutputs flushes the trace, dumps the metric registry, and writes a
// run manifest next to every observability output file.
func writeObsOutputs(o *obs.Observer, traceFile *os.File, traceOut, metricsOut string,
	args []string, p experiments.Params, scheme string, runs int, seed int64) error {
	if err := o.Flush(); err != nil {
		return fmt.Errorf("flush trace: %w", err)
	}
	var outputs []string
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		outputs = append(outputs, traceOut)
	}
	if metricsOut != "" {
		if err := o.Metrics.WriteFile(metricsOut); err != nil {
			return err
		}
		outputs = append(outputs, metricsOut)
	}
	man := obs.NewManifest("photodtn-sim", args, configString(p, scheme), seed, runs)
	man.Outputs = outputs
	for _, out := range outputs {
		if err := man.Write(obs.ManifestPath(out)); err != nil {
			return err
		}
	}
	return nil
}

// configString renders the effective scenario canonically for the manifest's
// config hash: same scenario → same hash, regardless of flag order.
func configString(p experiments.Params, scheme string) string {
	s := fmt.Sprintf("scheme=%s trace=%v storage=%g rate=%g bandwidth=%g cap=%g span=%g sample=%g theta=%g gateways=%g",
		scheme, p.Trace, p.StorageGB, p.PhotosPerHour, p.BandwidthMBs,
		p.ContactCapSec, p.SpanHours, p.SampleHours, p.Theta, p.GatewayFrac)
	if p.CustomTrace != nil {
		s += fmt.Sprintf(" custom-trace-nodes=%d", p.CustomTrace.Nodes)
	}
	if p.Faults != nil {
		s += fmt.Sprintf(" faults=%+v", *p.Faults)
	}
	return s
}
