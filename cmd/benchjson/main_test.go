package main

import (
	"reflect"
	"testing"
)

func TestParseLine(t *testing.T) {
	tests := []struct {
		name string
		line string
		want Result
		ok   bool
	}{
		{
			name: "full benchmem line",
			line: "BenchmarkEvaluator/n=32-8   12345   678.9 ns/op   1024 B/op   7 allocs/op",
			want: Result{
				Name: "BenchmarkEvaluator/n=32", Iterations: 12345,
				NsPerOp: 678.9, BytesPerOp: 1024, AllocsPerOp: 7,
			},
			ok: true,
		},
		{
			name: "time only (no -benchmem)",
			line: "BenchmarkGreedy-4 200 51234 ns/op",
			want: Result{Name: "BenchmarkGreedy", Iterations: 200, NsPerOp: 51234},
			ok:   true,
		},
		{
			name: "zero allocs still parses",
			line: "BenchmarkNoop-8 1000000000 0.25 ns/op 0 B/op 0 allocs/op",
			want: Result{Name: "BenchmarkNoop", Iterations: 1000000000, NsPerOp: 0.25},
			ok:   true,
		},
		{
			name: "custom unit only, no ns/op",
			line: "BenchmarkThroughput-8 50 128.5 MB/s",
			want: Result{
				Name: "BenchmarkThroughput", Iterations: 50,
				Metrics: map[string]float64{"MB/s": 128.5},
			},
			ok: true,
		},
		{
			name: "custom ReportMetric unit alongside ns/op",
			line: "BenchmarkScan-8 30 4567 ns/op 12.5 scenarios/op 3 allocs/op",
			want: Result{
				Name: "BenchmarkScan", Iterations: 30, NsPerOp: 4567, AllocsPerOp: 3,
				Metrics: map[string]float64{"scenarios/op": 12.5},
			},
			ok: true,
		},
		{
			name: "malformed pair skipped, rest kept",
			line: "BenchmarkPartial-8 10 garbage B/op 99 ns/op",
			want: Result{Name: "BenchmarkPartial", Iterations: 10, NsPerOp: 99},
			ok:   true,
		},
		{
			name: "no GOMAXPROCS suffix",
			line: "BenchmarkPlain 7 3.5 ns/op",
			want: Result{Name: "BenchmarkPlain", Iterations: 7, NsPerOp: 3.5},
			ok:   true,
		},
		{
			name: "bad iteration count",
			line: "BenchmarkBroken-8 xyz 99 ns/op",
			ok:   false,
		},
		{
			name: "no metrics at all",
			line: "BenchmarkBare-8 100",
			ok:   false,
		},
		{
			name: "only unparsable pairs",
			line: "BenchmarkBad-8 100 foo bar",
			ok:   false,
		},
		{
			name: "name only",
			line: "BenchmarkName-8",
			ok:   false,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := parseLine(tc.line)
			if ok != tc.ok {
				t.Fatalf("parseLine(%q) ok = %v, want %v", tc.line, ok, tc.ok)
			}
			if !ok {
				return
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("parseLine(%q)\n got %+v\nwant %+v", tc.line, got, tc.want)
			}
		})
	}
}

func TestTrimProcs(t *testing.T) {
	tests := []struct{ in, want string }{
		{"BenchmarkFoo-8", "BenchmarkFoo"},
		{"BenchmarkFoo-128", "BenchmarkFoo"},
		{"BenchmarkFoo", "BenchmarkFoo"},
		{"BenchmarkFoo/sub=a-b-4", "BenchmarkFoo/sub=a-b"},
		{"BenchmarkFoo-bar", "BenchmarkFoo-bar"},
	}
	for _, tc := range tests {
		if got := trimProcs(tc.in); got != tc.want {
			t.Errorf("trimProcs(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
