// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark baselines can be committed and diffed across
// the repository's history.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./internal/selection/ | benchjson -o BENCH_selection.json
//	benchjson -diff [-threshold 1.30] old.json new.json
//
// In the default mode the input is read from stdin; the environment header
// lines (goos, goarch, pkg, cpu) and every benchmark result line are parsed,
// everything else is ignored. Output is indented JSON sorted in input order.
//
// In -diff mode two previously converted documents are compared: for every
// benchmark present in both, the new/old ratios of ns/op, B/op, and
// allocs/op are printed, and the exit status is non-zero when any ns/op or
// allocs/op ratio exceeds the threshold (a regression). The allocs gate
// additionally requires an absolute growth beyond allocSlack: benchmarks
// with near-zero allocation counts (pooled steady-state paths) see their
// first-iteration warm-up amortised over an iteration count that varies
// run to run, so a pure ratio on a small count is noise, not a regression.
// B/op is reported but not gated — it tracks allocs/op and is the noisier
// of the two. Benchmarks present on only one side are listed but never
// gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark line: name, iteration count, and the reported
// per-operation metrics.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Metrics holds any other reported units (MB/s, custom b.ReportMetric
	// units) keyed by unit string.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Document is the full converted report.
type Document struct {
	GoOS       string   `json:"goos"`
	GoArch     string   `json:"goarch"`
	GoVersion  string   `json:"goversion"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	diff := flag.Bool("diff", false, "compare two benchmark JSON documents: benchjson -diff old.json new.json")
	threshold := flag.Float64("threshold", 1.30, "new/old ratio above which a ns/op or allocs/op change is a regression (with -diff)")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-diff needs exactly two arguments: old.json new.json"))
		}
		if diffDocs(flag.Arg(0), flag.Arg(1), *threshold) {
			os.Exit(1)
		}
		return
	}

	doc := Document{
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		GoVersion: runtime.Version(),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
}

// parseLine parses one benchmark result line of the form
//
//	BenchmarkName-8   12345   678.9 ns/op   10 B/op   2 allocs/op
//
// Any subset of the value/unit pairs may be present (no -benchmem drops the
// B/op and allocs/op columns; b.ReportMetric with ns/op replaces the time
// column entirely) and units beyond the three standard ones — MB/s,
// custom b.ReportMetric units — are collected into Metrics instead of being
// discarded. A pair that fails to parse is skipped, not fatal for the whole
// line; the line is kept as long as at least one metric parsed.
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: trimProcs(f[0]), Iterations: iters}
	parsed := false
	for i := 2; i+1 < len(f); i += 2 {
		val, unit := f[i], f[i+1]
		switch unit {
		case "ns/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				r.NsPerOp = v
				parsed = true
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.BytesPerOp = v
				parsed = true
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.AllocsPerOp = v
				parsed = true
			}
		default:
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = v
				parsed = true
			}
		}
	}
	return r, parsed
}

// trimProcs strips the trailing -N GOMAXPROCS suffix from a benchmark name.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// allocSlack is the absolute allocs/op growth below which the allocs ratio
// never gates, however large: amortised warm-up on near-allocation-free
// benchmarks moves small counts by a few tens between runs.
const allocSlack = 48

// diffDocs compares two converted documents and reports whether any
// benchmark regressed: a new/old ratio of ns/op or allocs/op above the
// threshold (allocs additionally needs absolute growth beyond allocSlack).
// Ratios are printed for every benchmark present in both documents;
// one-sided benchmarks are listed but never gate.
func diffDocs(oldPath, newPath string, threshold float64) (regressed bool) {
	oldDoc, err := loadDoc(oldPath)
	if err != nil {
		fatal(err)
	}
	newDoc, err := loadDoc(newPath)
	if err != nil {
		fatal(err)
	}
	oldByName := make(map[string]Result, len(oldDoc.Benchmarks))
	for _, r := range oldDoc.Benchmarks {
		oldByName[r.Name] = r
	}

	fmt.Printf("%-60s %12s %12s %8s %8s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "ns", "B/op", "allocs")
	seen := make(map[string]bool, len(newDoc.Benchmarks))
	for _, nr := range newDoc.Benchmarks {
		seen[nr.Name] = true
		or, ok := oldByName[nr.Name]
		if !ok {
			fmt.Printf("%-60s %12s %12.0f %8s %8s %8s  (new)\n",
				nr.Name, "-", nr.NsPerOp, "-", "-", "-")
			continue
		}
		nsRatio := ratio(nr.NsPerOp, or.NsPerOp)
		bRatio := ratio(float64(nr.BytesPerOp), float64(or.BytesPerOp))
		aRatio := ratio(float64(nr.AllocsPerOp), float64(or.AllocsPerOp))
		flag := ""
		if nsRatio > threshold || (aRatio > threshold && nr.AllocsPerOp-or.AllocsPerOp > allocSlack) {
			flag = "  REGRESSION"
			regressed = true
		}
		fmt.Printf("%-60s %12.0f %12.0f %8s %8s %8s%s\n",
			nr.Name, or.NsPerOp, nr.NsPerOp,
			fmtRatio(nsRatio), fmtRatio(bRatio), fmtRatio(aRatio), flag)
	}
	for _, or := range oldDoc.Benchmarks {
		if !seen[or.Name] {
			fmt.Printf("%-60s %12.0f %12s %8s %8s %8s  (removed)\n",
				or.Name, or.NsPerOp, "-", "-", "-", "-")
		}
	}
	if regressed {
		fmt.Printf("\nregression: at least one ns/op or allocs/op ratio exceeds %.2f\n", threshold)
	}
	return regressed
}

// ratio returns new/old, or 1 when the old value is zero and the new one is
// too; a metric appearing from zero reports as +Inf and is caught by any
// threshold.
func ratio(newV, oldV float64) float64 {
	if oldV == 0 {
		if newV == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return newV / oldV
}

func fmtRatio(r float64) string {
	if math.IsInf(r, 1) {
		return "+inf"
	}
	return fmt.Sprintf("%.2fx", r)
}

func loadDoc(path string) (*Document, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(buf, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
