// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark baselines can be committed and diffed across
// the repository's history.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./internal/selection/ | benchjson -o BENCH_selection.json
//
// The input is read from stdin; the environment header lines (goos, goarch,
// pkg, cpu) and every benchmark result line are parsed, everything else is
// ignored. Output is indented JSON sorted in input order.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark line: name, iteration count, and the reported
// per-operation metrics.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Metrics holds any other reported units (MB/s, custom b.ReportMetric
	// units) keyed by unit string.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Document is the full converted report.
type Document struct {
	GoOS       string   `json:"goos"`
	GoArch     string   `json:"goarch"`
	GoVersion  string   `json:"goversion"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc := Document{
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		GoVersion: runtime.Version(),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
}

// parseLine parses one benchmark result line of the form
//
//	BenchmarkName-8   12345   678.9 ns/op   10 B/op   2 allocs/op
//
// Any subset of the value/unit pairs may be present (no -benchmem drops the
// B/op and allocs/op columns; b.ReportMetric with ns/op replaces the time
// column entirely) and units beyond the three standard ones — MB/s,
// custom b.ReportMetric units — are collected into Metrics instead of being
// discarded. A pair that fails to parse is skipped, not fatal for the whole
// line; the line is kept as long as at least one metric parsed.
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: trimProcs(f[0]), Iterations: iters}
	parsed := false
	for i := 2; i+1 < len(f); i += 2 {
		val, unit := f[i], f[i+1]
		switch unit {
		case "ns/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				r.NsPerOp = v
				parsed = true
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.BytesPerOp = v
				parsed = true
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.AllocsPerOp = v
				parsed = true
			}
		default:
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = v
				parsed = true
			}
		}
	}
	return r, parsed
}

// trimProcs strips the trailing -N GOMAXPROCS suffix from a benchmark name.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
