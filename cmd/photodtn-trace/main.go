// Command photodtn-trace generates and inspects DTN contact traces.
//
// Usage:
//
//	photodtn-trace gen  [-kind mit|cambridge] [-nodes N] [-hours H] [-seed S] [-o FILE]
//	photodtn-trace stat [-i FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"photodtn/internal/mobility"
	"photodtn/internal/model"
	"photodtn/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "photodtn-trace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: photodtn-trace gen|stat [flags]")
	}
	switch args[0] {
	case "gen":
		return runGen(args[1:], stdout)
	case "stat":
		return runStat(args[1:], stdout)
	default:
		return fmt.Errorf("unknown subcommand %q (want gen or stat)", args[0])
	}
}

func runGen(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	var (
		kind  = fs.String("kind", "mit", "preset: mit, cambridge, or rwp (random waypoint)")
		nodes = fs.Int("nodes", 0, "override node count")
		hours = fs.Float64("hours", 0, "override span in hours")
		rng   = fs.Float64("range", 50, "radio range in metres (rwp only)")
		seed  = fs.Int64("seed", 1, "generator seed")
		out   = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var (
		tr  *trace.Trace
		err error
	)
	switch *kind {
	case "mit", "cambridge":
		var cfg trace.SynthConfig
		if *kind == "mit" {
			cfg = trace.MITLike(*seed)
		} else {
			cfg = trace.CambridgeLike(*seed)
		}
		if *nodes > 0 {
			cfg.Nodes = *nodes
		}
		if *hours > 0 {
			cfg.Span = *hours * 3600
		}
		tr, err = trace.Generate(cfg)
	case "rwp":
		n := *nodes
		if n <= 0 {
			n = 40
		}
		span := *hours * 3600
		if span <= 0 {
			span = 24 * 3600
		}
		cfg := mobility.DefaultConfig(n, span)
		cfg.Range = *rng
		cfg.Seed = *seed
		var tracks []*mobility.Track
		tracks, err = mobility.GenerateTracks(cfg)
		if err == nil {
			tr, err = mobility.ExtractContacts(cfg, tracks)
		}
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create output: %w", err)
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}
	return trace.Write(w, tr)
}

func runStat(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("stat", flag.ContinueOnError)
	in := fs.String("i", "", "input trace file (default stdin)")
	topN := fs.Int("top", 5, "how many most-connected nodes to list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return fmt.Errorf("open input: %w", err)
		}
		defer func() { _ = f.Close() }()
		r = f
	}
	tr, err := trace.Read(r)
	if err != nil {
		return err
	}
	s := trace.Analyze(tr)
	fmt.Fprintf(stdout, "nodes:            %d\n", tr.Nodes)
	fmt.Fprintf(stdout, "contacts:         %d\n", tr.Len())
	fmt.Fprintf(stdout, "span:             %.1f hours\n", tr.Duration()/3600)
	fmt.Fprintf(stdout, "mean duration:    %.0f s\n", trace.MeanContactDuration(tr))
	active := 0
	type nodeCount struct {
		node  model.NodeID
		count int
	}
	counts := make([]nodeCount, 0, tr.Nodes)
	for n := 1; n <= tr.Nodes; n++ {
		c := s.ContactCount[model.NodeID(n)]
		if c > 0 {
			active++
		}
		counts = append(counts, nodeCount{model.NodeID(n), c})
	}
	fmt.Fprintf(stdout, "active nodes:     %d/%d\n", active, tr.Nodes)
	sort.Slice(counts, func(i, j int) bool {
		if counts[i].count != counts[j].count {
			return counts[i].count > counts[j].count
		}
		return counts[i].node < counts[j].node
	})
	if *topN > len(counts) {
		*topN = len(counts)
	}
	fmt.Fprintf(stdout, "most connected:  ")
	for _, nc := range counts[:*topN] {
		fmt.Fprintf(stdout, " %v(%d)", nc.node, nc.count)
	}
	fmt.Fprintln(stdout)
	return nil
}
