package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenAndStat(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "t.trace")
	var sb strings.Builder
	if err := run([]string{"gen", "-kind", "cambridge", "-hours", "10", "-seed", "3", "-o", out}, &sb); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := run([]string{"stat", "-i", out}, &sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{"nodes:            54", "contacts:", "span:", "most connected:"} {
		if !strings.Contains(got, want) {
			t.Fatalf("stat output missing %q:\n%s", want, got)
		}
	}
}

func TestGenToStdout(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"gen", "-kind", "mit", "-nodes", "10", "-hours", "5"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "nodes 10") {
		t.Fatalf("missing header:\n%s", sb.String()[:100])
	}
}

func TestBadArgs(t *testing.T) {
	tests := [][]string{
		nil,
		{"bogus"},
		{"gen", "-kind", "bogus"},
		{"stat", "-i", "/nonexistent/file"},
	}
	for _, args := range tests {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Fatalf("args %v: expected error", args)
		}
	}
}

func TestGenRWP(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"gen", "-kind", "rwp", "-nodes", "8", "-hours", "2", "-range", "120"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "nodes 8") {
		t.Fatalf("missing header:\n%.120s", sb.String())
	}
}
