// Command photodtn-coverage evaluates the photo coverage model on JSON
// inputs: given a PoI list and a photo metadata list, it reports point and
// aspect coverage, and optionally the greedy selection that a storage
// budget would keep.
//
// Usage:
//
//	photodtn-coverage -pois pois.json -photos photos.json [-theta DEG]
//	                  [-budget MB] [-sample]
//
// With -sample it writes example input files instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"photodtn/internal/coverage"
	"photodtn/internal/geo"
	"photodtn/internal/model"
	"photodtn/internal/selection"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "photodtn-coverage:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("photodtn-coverage", flag.ContinueOnError)
	var (
		poisPath   = fs.String("pois", "", "PoI list JSON file")
		photosPath = fs.String("photos", "", "photo metadata JSON file")
		thetaDeg   = fs.Float64("theta", 30, "effective angle θ in degrees")
		budgetMB   = fs.Float64("budget", 0, "storage budget in MB for a greedy selection (0 = skip)")
		sample     = fs.Bool("sample", false, "write sample pois.json and photos.json instead")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sample {
		return writeSamples(stdout)
	}
	if *poisPath == "" || *photosPath == "" {
		return fmt.Errorf("need -pois and -photos (or -sample)")
	}

	var pois []model.PoI
	if err := readJSON(*poisPath, &pois); err != nil {
		return err
	}
	var photos model.PhotoList
	if err := readJSON(*photosPath, &photos); err != nil {
		return err
	}
	for i, p := range photos {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("photo %d: %w", i, err)
		}
	}

	m := coverage.NewMap(pois, geo.Radians(*thetaDeg))
	cov := m.Of(photos)
	pt, as := m.Normalized(cov)
	fmt.Fprintf(stdout, "PoIs: %d   photos: %d   θ: %.0f°\n", len(pois), len(photos), *thetaDeg)
	fmt.Fprintf(stdout, "point coverage:  %.0f of %.0f PoIs (%.1f%%)\n", cov.Point, m.TotalWeight(), 100*pt)
	fmt.Fprintf(stdout, "aspect coverage: %.1f° mean per PoI\n", geo.Degrees(as))

	if *budgetMB > 0 {
		fpc := coverage.NewFootprintCache(m)
		ev := selection.NewEvaluator(m, selection.DefaultConfig(), nil, nil)
		pool := selection.BuildPool(fpc, photos)
		sel := selection.GreedyFill(ev, pool, int64(*budgetMB*float64(int64(1)<<20)))
		selCov := m.Of(sel)
		fmt.Fprintf(stdout, "greedy selection under %.0f MB: %d photos, coverage %v\n",
			*budgetMB, len(sel), selCov)
		for i, p := range sel {
			fmt.Fprintf(stdout, "  %2d. %v at %v looking %.0f°\n", i+1, p.ID, p.Location, geo.Degrees(p.Orientation))
		}
	}
	return nil
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read %s: %w", path, err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	return nil
}

func writeSamples(stdout io.Writer) error {
	pois := []model.PoI{
		model.NewPoI(0, geo.Vec{X: 100, Y: 100}),
		model.NewPoI(1, geo.Vec{X: 400, Y: 250}),
	}
	photos := model.PhotoList{
		{ID: model.MakePhotoID(1, 0), Owner: 1, Location: geo.Vec{X: 160, Y: 100},
			Range: 150, FOV: geo.Radians(50), Orientation: geo.Radians(180), Size: 4 << 20},
		{ID: model.MakePhotoID(1, 1), Owner: 1, Location: geo.Vec{X: 100, Y: 180},
			Range: 150, FOV: geo.Radians(50), Orientation: geo.Radians(270), Size: 4 << 20},
		{ID: model.MakePhotoID(2, 0), Owner: 2, Location: geo.Vec{X: 330, Y: 250},
			Range: 150, FOV: geo.Radians(50), Orientation: 0, Size: 4 << 20},
	}
	for name, v := range map[string]any{"pois.json": pois, "photos.json": photos} {
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(name, data, 0o644); err != nil {
			return fmt.Errorf("write %s: %w", name, err)
		}
		fmt.Fprintf(stdout, "wrote %s\n", name)
	}
	return nil
}
