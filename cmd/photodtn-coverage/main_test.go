package main

import (
	"os"
	"strings"
	"testing"
)

func TestSampleThenEvaluate(t *testing.T) {
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()

	var sb strings.Builder
	if err := run([]string{"-sample"}, &sb); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := run([]string{"-pois", "pois.json", "-photos", "photos.json", "-budget", "8"}, &sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{"point coverage:", "aspect coverage:", "greedy selection under 8 MB: 2 photos"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestMissingFlags(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Fatal("expected error without flags")
	}
	if err := run([]string{"-pois", "/nope.json", "-photos", "/nope.json"}, &sb); err == nil {
		t.Fatal("expected error for missing files")
	}
}
