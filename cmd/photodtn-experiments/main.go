// Command photodtn-experiments regenerates the paper's evaluation: Table I,
// the §IV prototype demo (Fig. 3/4), and the simulation figures
// (Figs. 5–8), plus the repository's ablation studies.
//
// Usage:
//
//	photodtn-experiments [-exp all|tab1|fig3|fig5|fig6|fig7|fig8|faults|ablations]
//	                     [-runs N] [-seed S] [-quick] [-out FILE]
//	                     [-workers N] [-checkpoint FILE]
//	                     [-trace FILE] [-metrics-out FILE]
//	                     [-cpuprofile FILE] [-memprofile FILE]
//
// The -workers flag bounds how many simulation runs execute concurrently
// (default: GOMAXPROCS); the report is bit-identical for every worker
// count. The -checkpoint flag names a JSONL file recording every completed
// (scenario, scheme, run) cell: an interrupted invocation (Ctrl-C finishes
// the in-flight cells and exits) rerun with the same flags resumes instead
// of recomputing.
//
// The -cpuprofile and -memprofile flags write runtime/pprof profiles of the
// experiment run (the selection evaluator dominates both), for use with
// `go tool pprof`.
//
// The -trace flag streams every simulation event of the selected experiments
// as JSONL; -metrics-out dumps the aggregated subsystem counters as JSON.
// A run manifest (config hash, seed, git revision, machine) is written next
// to every output file (-out, -trace, -metrics-out). With neither
// observability flag set the runs are bit-identical to unobserved ones.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"photodtn/internal/experiments"
	"photodtn/internal/obs"
	"photodtn/internal/runner"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "photodtn-experiments:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("photodtn-experiments", flag.ContinueOnError)
	var (
		exp   = fs.String("exp", "all", "experiment: all, tab1, fig3, fig5, fig6, fig7, fig8, faults, extended, ablations")
		runs  = fs.Int("runs", 3, "averaged runs per data point (paper: 50)")
		seed  = fs.Int64("seed", 1, "base seed")
		quick = fs.Bool("quick", false, "trim sweeps and spans (for smoke testing)")
		chart = fs.Bool("chart", false, "append ASCII charts to each figure")
		out   = fs.String("out", "", "also write the report to this file")
		cpu   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		mem   = fs.String("memprofile", "", "write a heap profile to this file on exit")

		workers    = fs.Int("workers", 0, "concurrent simulation runs; 0 means GOMAXPROCS (results are identical for any value)")
		checkpoint = fs.String("checkpoint", "", "record completed cells to this JSONL file and resume from it")
		traceOut   = fs.String("trace", "", "write the structured simulation event trace as JSONL to this file")
		metricsOut = fs.String("metrics-out", "", "write aggregated subsystem counters/histograms as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpu != "" {
		f, err := os.Create(*cpu)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *mem != "" {
		defer func() {
			f, err := os.Create(*mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "photodtn-experiments: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live allocations, not GC garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "photodtn-experiments: memprofile:", err)
			}
		}()
	}
	opts := experiments.Options{Runs: *runs, BaseSeed: *seed, Quick: *quick, Workers: *workers}.WithContext(ctx)
	if *checkpoint != "" {
		cp, err := runner.OpenCheckpoint(*checkpoint)
		if err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		defer cp.Close()
		opts.Checkpoint = cp
	}
	var traceFile *os.File
	if *traceOut != "" || *metricsOut != "" {
		var sink io.Writer
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				return fmt.Errorf("trace: %w", err)
			}
			defer f.Close()
			traceFile = f
			sink = f
		}
		opts.Obs = obs.New(obs.DefaultTraceCap, sink)
	}

	var report strings.Builder
	emit := func(s string) {
		report.WriteString(s)
		report.WriteByte('\n')
		fmt.Fprintln(stdout, s)
	}
	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if want("tab1") {
		ran = true
		emit(experiments.FormatTable1())
	}
	if want("fig3") {
		ran = true
		demo, err := experiments.RunDemo(experiments.DefaultDemoConfig())
		if err != nil {
			return fmt.Errorf("fig3: %w", err)
		}
		emit(demo.Format())
	}
	figs := []struct {
		name string
		fn   func() (*experiments.Figure, error)
	}{
		{"fig5", func() (*experiments.Figure, error) { return experiments.Fig5(opts) }},
		{"fig6", func() (*experiments.Figure, error) { return experiments.Fig6(opts) }},
		{"fig7", func() (*experiments.Figure, error) { return experiments.Fig7(experiments.MIT, opts) }},
		{"fig7", func() (*experiments.Figure, error) { return experiments.Fig7(experiments.Cambridge, opts) }},
		{"fig8", func() (*experiments.Figure, error) { return experiments.Fig8(experiments.MIT, opts) }},
		{"fig8", func() (*experiments.Figure, error) { return experiments.Fig8(experiments.Cambridge, opts) }},
		{"faults", func() (*experiments.Figure, error) { return experiments.FigFaultsNodeFailure(opts) }},
		{"faults", func() (*experiments.Figure, error) { return experiments.FigFaultsFrameLoss(opts) }},
		{"extended", func() (*experiments.Figure, error) { return experiments.ExtendedComparison(opts) }},
		{"ablations", func() (*experiments.Figure, error) { return experiments.AblationPthld(opts) }},
		{"ablations", func() (*experiments.Figure, error) { return experiments.AblationTheta(opts) }},
		{"ablations", func() (*experiments.Figure, error) { return experiments.AblationEvaluator(opts) }},
	}
	for _, f := range figs {
		if !want(f.name) {
			continue
		}
		ran = true
		fig, err := f.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", f.name, err)
		}
		emit(fig.Format())
		if *chart {
			emit(fig.Chart(experiments.MetricPoint, 64, 12))
			emit(fig.Chart(experiments.MetricAspect, 64, 12))
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	var outputs []string
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report.String()), 0o644); err != nil {
			return fmt.Errorf("write report: %w", err)
		}
		outputs = append(outputs, *out)
	}
	if opts.Obs != nil {
		if err := opts.Obs.Flush(); err != nil {
			return fmt.Errorf("flush trace: %w", err)
		}
		if traceFile != nil {
			if err := traceFile.Close(); err != nil {
				return fmt.Errorf("trace: %w", err)
			}
			outputs = append(outputs, *traceOut)
		}
		if *metricsOut != "" {
			if err := opts.Obs.Metrics.WriteFile(*metricsOut); err != nil {
				return err
			}
			outputs = append(outputs, *metricsOut)
		}
	}
	if len(outputs) > 0 {
		config := fmt.Sprintf("exp=%s runs=%d quick=%v", *exp, *runs, *quick)
		man := obs.NewManifest("photodtn-experiments", args, config, *seed, *runs)
		man.Outputs = outputs
		for _, o := range outputs {
			if err := man.Write(obs.ManifestPath(o)); err != nil {
				return err
			}
		}
	}
	return nil
}
