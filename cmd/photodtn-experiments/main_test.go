package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTab1AndFig3(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.txt")
	var sb strings.Builder
	if err := run(context.Background(), []string{"-exp", "tab1", "-out", out}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "TABLE I") {
		t.Fatalf("missing table:\n%s", sb.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "TABLE I") {
		t.Fatal("report file missing table")
	}

	sb.Reset()
	if err := run(context.Background(), []string{"-exp", "fig3"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "FIG3") || !strings.Contains(sb.String(), "OurScheme") {
		t.Fatalf("missing demo:\n%s", sb.String())
	}
}

func TestQuickFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a quick simulation sweep")
	}
	var sb strings.Builder
	if err := run(context.Background(), []string{"-exp", "fig7", "-quick", "-runs", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "FIG7-MIT") || !strings.Contains(sb.String(), "FIG7-CAM") {
		t.Fatalf("missing figures:\n%s", sb.String())
	}
}

func TestWorkersInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a quick simulation sweep twice")
	}
	// The acceptance bar for the orchestrator: the report is byte-identical
	// no matter how many workers computed it.
	var serial, parallel strings.Builder
	args := []string{"-exp", "fig7", "-quick", "-runs", "1"}
	if err := run(context.Background(), append(args, "-workers", "1"), &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), append(args, "-workers", "8"), &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Fatalf("-workers 8 report diverges from -workers 1:\n%s\nvs\n%s",
			parallel.String(), serial.String())
	}
}

func TestCheckpointFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a quick simulation sweep twice")
	}
	cp := filepath.Join(t.TempDir(), "cells.jsonl")
	args := []string{"-exp", "fig7", "-quick", "-runs", "1", "-checkpoint", cp}
	var first, resumed strings.Builder
	if err := run(context.Background(), args, &first); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(cp); err != nil || fi.Size() == 0 {
		t.Fatalf("checkpoint not written: %v", err)
	}
	if err := run(context.Background(), args, &resumed); err != nil {
		t.Fatal(err)
	}
	if first.String() != resumed.String() {
		t.Fatal("resumed report diverges from the original")
	}
}

func TestFaultsFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a quick simulation sweep")
	}
	var sb strings.Builder
	if err := run(context.Background(), []string{"-exp", "faults", "-quick", "-runs", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "FAULTS-FAIL") || !strings.Contains(sb.String(), "FAULTS-LOSS") {
		t.Fatalf("missing fault figures:\n%s", sb.String())
	}
}

func TestCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var sb strings.Builder
	err := run(ctx, []string{"-exp", "fig7", "-quick", "-runs", "1"}, &sb)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-exp", "bogus"}, &sb); err == nil {
		t.Fatal("expected error")
	}
}
