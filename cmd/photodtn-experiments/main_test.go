package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTab1AndFig3(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.txt")
	var sb strings.Builder
	if err := run([]string{"-exp", "tab1", "-out", out}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "TABLE I") {
		t.Fatalf("missing table:\n%s", sb.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "TABLE I") {
		t.Fatal("report file missing table")
	}

	sb.Reset()
	if err := run([]string{"-exp", "fig3"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "FIG3") || !strings.Contains(sb.String(), "OurScheme") {
		t.Fatalf("missing demo:\n%s", sb.String())
	}
}

func TestQuickFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a quick simulation sweep")
	}
	var sb strings.Builder
	if err := run([]string{"-exp", "fig7", "-quick", "-runs", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "FIG7-MIT") || !strings.Contains(sb.String(), "FIG7-CAM") {
		t.Fatalf("missing figures:\n%s", sb.String())
	}
}

func TestFaultsFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a quick simulation sweep")
	}
	var sb strings.Builder
	if err := run([]string{"-exp", "faults", "-quick", "-runs", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "FAULTS-FAIL") || !strings.Contains(sb.String(), "FAULTS-LOSS") {
		t.Fatalf("missing fault figures:\n%s", sb.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "bogus"}, &sb); err == nil {
		t.Fatal("expected error")
	}
}
