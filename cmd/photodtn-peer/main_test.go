package main

import (
	"bytes"
	"context"
	"net"
	"strings"
	"testing"

	"photodtn"
)

// startCommandCenter serves a command-center peer on localhost using the
// same demo map the CLI builds.
func startCommandCenter(t *testing.T) (*photodtn.Peer, string) {
	t.Helper()
	hall := photodtn.NewPoI(0, photodtn.Vec{X: 300, Y: 300})
	m := photodtn.NewMap([]photodtn.PoI{hall}, photodtn.Radians(30))
	cc := photodtn.NewPeer(photodtn.CommandCenter, m, 0, photodtn.WithSeed(99))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() { _ = cc.Serve(l) }()
	return cc, l.Addr().String()
}

func TestRunRequiresWork(t *testing.T) {
	err := run(context.Background(), []string{"-id", "3"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "nothing to do") {
		t.Fatalf("err = %v, want nothing-to-do", err)
	}
}

func TestRunDurableUploadAndRestart(t *testing.T) {
	cc, addr := startCommandCenter(t)
	dir := t.TempDir()

	var out bytes.Buffer
	args := []string{"-id", "5", "-state-dir", dir, "-photos", "2", "-dial", addr}
	if err := run(context.Background(), args, &out); err != nil {
		t.Fatalf("first run: %v (output: %s)", err, out.String())
	}
	if !strings.Contains(out.String(), "captured 2 photos") {
		t.Fatalf("first run output: %s", out.String())
	}
	if got := len(cc.Photos()); got != 2 {
		t.Fatalf("command center holds %d photos, want 2", got)
	}

	// A restarted process recovers from the journal and re-reports nothing:
	// its photos were delivered and acknowledged, so the second contact
	// moves no photos.
	out.Reset()
	if err := run(context.Background(), args, &out); err != nil {
		t.Fatalf("second run: %v (output: %s)", err, out.String())
	}
	if !strings.Contains(out.String(), "recovered") {
		t.Fatalf("second run did not recover: %s", out.String())
	}
	if got := len(cc.Photos()); got != 2 {
		t.Fatalf("restart re-delivered: command center holds %d photos, want 2", got)
	}
	if !strings.Contains(out.String(), "journal: 2 contacts durable") {
		t.Fatalf("second run output: %s", out.String())
	}
}

func TestRunTransferFlags(t *testing.T) {
	cc, addr := startCommandCenter(t)
	var out bytes.Buffer
	args := []string{"-id", "9", "-photos", "2", "-chunk-size", "4096", "-no-resume", "-dial", addr}
	if err := run(context.Background(), args, &out); err != nil {
		t.Fatalf("run: %v (output: %s)", err, out.String())
	}
	if got := len(cc.Photos()); got != 2 {
		t.Fatalf("command center holds %d photos, want 2", got)
	}
	if !strings.Contains(out.String(), "transfer:") {
		t.Fatalf("no transfer stats in output: %s", out.String())
	}
}

func TestRunMemoryOnlyPeer(t *testing.T) {
	_, addr := startCommandCenter(t)
	var out bytes.Buffer
	err := run(context.Background(), []string{"-id", "7", "-photos", "1", "-dial", addr}, &out)
	if err != nil {
		t.Fatalf("run: %v (output: %s)", err, out.String())
	}
	if strings.Contains(out.String(), "journal") {
		t.Fatalf("memory-only run mentions the journal: %s", out.String())
	}
}

func TestRunGuardFlags(t *testing.T) {
	cc, addr := startCommandCenter(t)
	var out bytes.Buffer
	args := []string{"-id", "11", "-photos", "1", "-max-peer-rate", "5",
		"-quarantine-ttl", "1h", "-dial", addr}
	if err := run(context.Background(), args, &out); err != nil {
		t.Fatalf("run: %v (output: %s)", err, out.String())
	}
	if got := len(cc.Photos()); got != 1 {
		t.Fatalf("command center holds %d photos, want 1", got)
	}
	// The shutdown summary reports the guard's activity (all quiet on an
	// honest exchange).
	if !strings.Contains(out.String(), "guard: 0 violations, 0 contacts shed, 0 quarantines imposed, 0 active") {
		t.Fatalf("no guard stats in output: %s", out.String())
	}
}

func TestRunWithoutGuardFlagsStaysQuiet(t *testing.T) {
	_, addr := startCommandCenter(t)
	var out bytes.Buffer
	err := run(context.Background(), []string{"-id", "13", "-photos", "1", "-dial", addr}, &out)
	if err != nil {
		t.Fatalf("run: %v (output: %s)", err, out.String())
	}
	if strings.Contains(out.String(), "guard:") {
		t.Fatalf("guardless run printed guard stats: %s", out.String())
	}
}
