// Command photodtn-peer runs one live framework node speaking the wire
// protocol — the repository's stand-in for the paper's Android prototype,
// runnable as a long-lived process.
//
// Usage:
//
//	photodtn-peer -id N [-state-dir DIR] [-listen ADDR] [-dial ADDR]
//	              [-photos N] [-storage-mb MB] [-snapshot-every N] [-seed S]
//	              [-max-contacts N] [-chunk-size BYTES] [-no-resume]
//	              [-max-peer-rate R] [-quarantine-ttl D]
//
// With -listen the peer serves contacts until interrupted, handling up to
// -max-contacts connections concurrently (excess accepts are rejected with
// a clean abort); with -dial it contacts a remote peer once (both may be
// combined: serve after an initial contact). The -photos flag captures
// synthetic photos through the simulated phone pipeline before any contact.
//
// With -state-dir the peer is durable: photo admissions and contact
// outcomes journal to the directory, and a restarted process recovers
// exactly the state it crashed with — it re-requests nothing it already
// holds and re-reports no delivery it already acknowledged (DESIGN.md §7).
// On shutdown the journal is compacted into a snapshot.
//
// Passing -max-peer-rate and/or -quarantine-ttl arms the guard (DESIGN.md
// §12): inbound messages are semantically validated against the protocol
// state machine, each remote gets a contact-rate budget, and repeat
// offenders are quarantined for the TTL (journaled with -state-dir, so a
// restart keeps refusing them).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"os/signal"
	"syscall"

	"photodtn"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "photodtn-peer:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("photodtn-peer", flag.ContinueOnError)
	var (
		id          = fs.Int("id", 1, "node ID (0 = command center)")
		stateDir    = fs.String("state-dir", "", "journal directory; state survives restarts (empty = memory only)")
		listen      = fs.String("listen", "", "serve contacts on this address until interrupted")
		dial        = fs.String("dial", "", "contact the remote peer at this address")
		photos      = fs.Int("photos", 0, "capture this many synthetic photos before contacting")
		storageMB   = fs.Int64("storage-mb", 64, "storage capacity in MB")
		snapEvery   = fs.Int("snapshot-every", 0, "checkpoint the journal every N contacts (0 = default)")
		seed        = fs.Int64("seed", 1, "seed for the nonce stream and the synthetic camera")
		maxContacts = fs.Int("max-contacts", 0, "serve at most N contacts concurrently (0 = 4×GOMAXPROCS)")
		chunkSize   = fs.Int("chunk-size", 0, "wire v2 chunk size in bytes (0 = default 256 KiB)")
		noResume    = fs.Bool("no-resume", false, "discard partial transfers at contact end instead of resuming later")
		maxPeerRate = fs.Float64("max-peer-rate", 0, "arm the guard: per-peer contact budget in contacts/sec (0 = guard off unless -quarantine-ttl is set)")
		quarTTL     = fs.Duration("quarantine-ttl", 0, "arm the guard: quarantine repeat offenders for this long (0 = guard off unless -max-peer-rate is set)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listen == "" && *dial == "" {
		return errors.New("nothing to do: pass -listen and/or -dial")
	}

	// The demo world every example shares: one PoI (the town hall),
	// effective angle 30°.
	hall := photodtn.NewPoI(0, photodtn.Vec{X: 300, Y: 300})
	m := photodtn.NewMap([]photodtn.PoI{hall}, photodtn.Radians(30))
	nodeID := photodtn.NodeID(*id)

	opts := []photodtn.PeerOption{
		photodtn.WithSeed(*seed),
		photodtn.WithTransfer(photodtn.TransferConfig{
			ChunkSize: *chunkSize,
			Resume:    !*noResume,
		}),
	}
	if *snapEvery > 0 {
		opts = append(opts, photodtn.WithSnapshotEvery(*snapEvery))
	}
	if *maxContacts > 0 {
		opts = append(opts, photodtn.WithMaxContacts(*maxContacts))
	}
	if *maxPeerRate > 0 || *quarTTL > 0 {
		opts = append(opts, photodtn.WithGuard(photodtn.GuardConfig{
			MaxContactRate: *maxPeerRate,
			QuarantineTTL:  quarTTL.Seconds(),
		}))
	}
	var p *photodtn.Peer
	if *stateDir != "" {
		var err error
		p, err = photodtn.OpenPeer(*stateDir, nodeID, m, *storageMB<<20, opts...)
		if err != nil {
			return err
		}
		defer func() {
			if err := p.Checkpoint(); err != nil {
				fmt.Fprintf(stdout, "checkpoint failed: %v\n", err)
			}
			_ = p.Close()
		}()
		if st := p.JournalStats(); st.Recovered {
			fmt.Fprintf(stdout,
				"recovered %d photos from %s (%d commits, %d records replayed, %d torn bytes dropped)\n",
				len(p.Photos()), *stateDir, st.Commits, st.RecordsReplayed, st.TruncatedBytes)
		}
	} else {
		p = photodtn.NewPeer(nodeID, m, *storageMB<<20, opts...)
	}

	if *photos > 0 {
		if err := capture(p, hall, nodeID, *photos, *seed, stdout); err != nil {
			return err
		}
	}

	if *dial != "" {
		if err := p.DialContext(ctx, *dial); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "contacted %s; holding %d photos, coverage %v\n",
			*dial, len(p.Photos()), p.Coverage())
	}

	if *listen != "" {
		l, err := net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "peer %v listening on %s\n", nodeID, l.Addr())
		if err := p.ServeContext(ctx, l); err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
	}

	if *stateDir != "" {
		st := p.JournalStats()
		fmt.Fprintf(stdout, "journal: %d contacts durable in %s\n", st.Commits, *stateDir)
	}
	if ts := p.TransferStats(); ts.ChunksSent > 0 || ts.ChunksReceived > 0 || ts.Partials > 0 {
		fmt.Fprintf(stdout,
			"transfer: %d chunks sent, %d received, %d resumed (%d bytes saved), %d photos finished across contacts, %d partials held (%d bytes), %d bytes wasted\n",
			ts.ChunksSent, ts.ChunksReceived, ts.ChunksResumed, ts.ResumedBytes,
			ts.PhotosResumed, ts.Partials, ts.FragmentBytes, ts.WastedBytes)
	}
	if p.GuardEnabled() {
		gs := p.GuardStats()
		fmt.Fprintf(stdout,
			"guard: %d violations, %d contacts shed, %d quarantines imposed, %d active\n",
			gs.Violations, gs.ShedContacts, gs.QuarantineEvents, gs.Quarantined)
	}
	return nil
}

// capture shoots n photos of the PoI from standpoints spread around it,
// through the full simulated phone pipeline. Photos a recovered peer
// already holds (same deterministic IDs) are skipped, not duplicated.
func capture(p *photodtn.Peer, poi photodtn.PoI, id photodtn.NodeID, n int, seed int64, stdout io.Writer) error {
	phone, err := photodtn.NewPhone(id, photodtn.DefaultPhoneConfig(), seed)
	if err != nil {
		return err
	}
	held := p.Photos()
	taken := 0
	for i := 0; i < n; i++ {
		angle := 2 * math.Pi * float64(i) / float64(n)
		phone.MoveTo(photodtn.Vec{
			X: poi.Location.X + 80*math.Cos(angle),
			Y: poi.Location.Y + 80*math.Sin(angle),
		})
		phone.AimAt(poi.Location)
		photo := phone.Capture(float64(i))
		if held.Contains(photo.ID) {
			continue // already durable from a previous incarnation
		}
		if err := p.AddPhoto(photo); err != nil {
			return err
		}
		taken++
	}
	fmt.Fprintf(stdout, "captured %d photos (%d already held)\n", taken, n-taken)
	return nil
}
